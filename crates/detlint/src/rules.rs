//! The determinism rules (D001–D005) and the suppression mechanism.
//!
//! Every rule is a pattern over one file's token stream plus the scoping
//! the config provides. Findings carry the rule id, the repo-relative
//! path, the 1-based line, and a human message; the caller decides how to
//! render them and whether they fail the build.
//!
//! Suppression is explicit and auditable: a finding on line `L` is
//! suppressed by a `// detlint::allow(D00x): reason` comment either on
//! line `L` itself or on its own line directly above the code it excuses.
//! The reason is mandatory — an annotation without one is itself a
//! finding — and an allow that suppresses nothing is reported as unused,
//! so stale suppressions cannot accumulate.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;

/// A rule identifier. `Allow` covers the meta-findings of the suppression
/// mechanism itself (malformed or unused annotations), which cannot be
/// suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// HashMap/HashSet iteration in determinism-scoped paths.
    D001,
    /// Wall-clock reads outside the crate allowlist.
    D002,
    /// Unseeded randomness, anywhere.
    D003,
    /// `unwrap()`/`expect()` in library code without justification.
    D004,
    /// `unsafe` outside vendor.
    D005,
    /// Malformed or unused `detlint::allow` annotation.
    Allow,
}

impl RuleId {
    /// The textual id used in annotations and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::Allow => "ALLOW",
        }
    }

    fn from_str(s: &str) -> Option<RuleId> {
        match s {
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "D005" => Some(RuleId::D005),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: RuleId,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// A parsed `detlint::allow` annotation.
#[derive(Clone, Debug)]
struct Allow {
    rule: RuleId,
    /// The code line this annotation excuses.
    applies_to: usize,
    /// The line the comment itself sits on (for reporting).
    comment_line: usize,
    used: bool,
}

/// Everything the rules need to know about one file's position in the
/// repo, derived from config + path by the scanner.
#[derive(Clone, Copy, Debug)]
pub struct FileScope<'a> {
    /// Repo-relative `/`-separated path.
    pub rel_path: &'a str,
    /// Under a `[rules.D001].paths` prefix?
    pub d001: bool,
    /// Crate is on the `[rules.D002].allow_crates` wall-clock allowlist?
    pub d002_allowed: bool,
    /// Under a `[rules.D004].library_paths` prefix?
    pub d004: bool,
}

/// Lint one file: run every rule, apply suppressions, report unused and
/// malformed annotations. Returns findings sorted by line.
pub fn lint_file(scope: FileScope<'_>, tokens: &[Token]) -> Vec<Finding> {
    let (mut allows, mut findings) = parse_allows(scope.rel_path, tokens);
    let test_regions = test_mod_regions(tokens);
    let in_test_dir = is_test_path(scope.rel_path);
    let in_bin = is_bin_path(scope.rel_path);
    let in_test = |line: usize| {
        in_test_dir
            || test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    };

    let mut raw: Vec<Finding> = Vec::new();
    if scope.d001 {
        d001_hash_iteration(scope.rel_path, tokens, &mut raw);
    }
    if !scope.d002_allowed {
        d002_wall_clock(scope.rel_path, tokens, &mut raw);
    }
    d003_unseeded_rng(scope.rel_path, tokens, &mut raw);
    if scope.d004 && !in_bin {
        d004_unwrap_budget(scope.rel_path, tokens, &mut raw, &|line| in_test(line));
    }
    d005_unsafe(scope.rel_path, tokens, &mut raw);

    for finding in raw {
        let suppressed = allows.iter_mut().any(|a| {
            if a.rule == finding.rule && a.applies_to == finding.line {
                a.used = true;
                true
            } else {
                false
            }
        });
        if !suppressed {
            findings.push(finding);
        }
    }
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: RuleId::Allow,
                path: scope.rel_path.to_string(),
                line: a.comment_line,
                message: format!(
                    "unused suppression `detlint::allow({})` — nothing to excuse here; remove it",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Is this path test-only by location (integration tests, examples,
/// benches)? Those directories are outside the D004 library budget.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/examples/")
        || rel.contains("/benches/")
}

/// Binary entry points may panic at the process boundary; D004 covers
/// library surface only.
fn is_bin_path(rel: &str) -> bool {
    rel.ends_with("/main.rs") || rel.contains("/src/bin/")
}

// ---------------------------------------------------------------------------
// suppression annotations

/// Extract `detlint::allow` annotations from line comments. A comment that
/// shares its line with code applies to that line; a comment on its own
/// line applies to the next code line. Malformed annotations (unknown rule
/// id, missing `: reason`) are reported immediately.
fn parse_allows(rel_path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(pos) = tok.text.find("detlint::allow") else {
            continue;
        };
        let rest = &tok.text[pos + "detlint::allow".len()..];
        let (rule, has_reason) = match parse_allow_body(rest) {
            AllowParse::Annotation { rule, has_reason } => (rule, has_reason),
            // prose that merely *mentions* the syntax (`detlint::allow(D00x)`
            // in docs) is not an annotation attempt
            AllowParse::Prose => continue,
            AllowParse::UnknownRule => {
                findings.push(Finding {
                    rule: RuleId::Allow,
                    path: rel_path.to_string(),
                    line: tok.line,
                    message: "annotation names an unknown rule — expected \
                              `detlint::allow(D00x): reason` with x in 1..=5"
                        .to_string(),
                });
                continue;
            }
        };
        if !has_reason {
            findings.push(Finding {
                rule: RuleId::Allow,
                path: rel_path.to_string(),
                line: tok.line,
                message: format!(
                    "suppression of {rule} has no reason — every allow must justify itself: \
                     `detlint::allow({rule}): why this is sound`"
                ),
            });
            continue;
        }
        // own-line comment ⇒ applies to the next code line; trailing
        // comment ⇒ applies to its own line
        let own_line = !tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.kind != TokenKind::LineComment);
        let applies_to = if own_line {
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::LineComment)
                .map(|t| t.line)
                .unwrap_or(tok.line + 1)
        } else {
            tok.line
        };
        allows.push(Allow {
            rule,
            applies_to,
            comment_line: tok.line,
            used: false,
        });
    }
    (allows, findings)
}

/// Outcome of parsing the text after a `detlint::allow` occurrence.
enum AllowParse {
    /// A real annotation attempt (`(D` + three digits + `)`).
    Annotation { rule: RuleId, has_reason: bool },
    /// `D` + digits in rule position, but not a rule we have.
    UnknownRule,
    /// Anything else — documentation mentioning the syntax, not an attempt.
    Prose,
}

/// Parse `(<rule>): <reason>` after the `detlint::allow` prefix. Only a
/// rule-shaped id (`D` followed by digits) counts as an attempt; this is
/// what lets docs spell out `detlint::allow(D00x): reason` without being
/// flagged. A typo that fails this gate simply does not suppress — the
/// underlying finding still fires, so the gate fails closed.
fn parse_allow_body(rest: &str) -> AllowParse {
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Prose;
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Prose;
    };
    let id = rest[..close].trim();
    let rule_shaped =
        id.len() == 4 && id.starts_with('D') && id[1..].chars().all(|c| c.is_ascii_digit());
    if !rule_shaped {
        return AllowParse::Prose;
    }
    let Some(rule) = RuleId::from_str(id) else {
        return AllowParse::UnknownRule;
    };
    let after = &rest[close + 1..];
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    AllowParse::Annotation { rule, has_reason }
}

// ---------------------------------------------------------------------------
// cfg(test) regions

/// Line ranges of `#[cfg(test)] mod … { … }` blocks. Strings and comments
/// are already out of the token stream, so brace counting is exact.
fn test_mod_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // bracket-match the attribute and look for cfg(..test..)
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_cfg = false;
        let mut mentions_test = false;
        let mut first = true;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
            } else if t.kind == TokenKind::Ident {
                if first {
                    is_cfg = t.text == "cfg";
                    first = false;
                }
                if t.text == "test" {
                    mentions_test = true;
                }
            }
            j += 1;
        }
        if !(is_cfg && mentions_test) {
            i = j;
            continue;
        }
        // skip further attributes, then require `mod name {`
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut depth = 1usize;
            j += 2;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if j < tokens.len() && tokens[j].is_ident("mod") {
            let start_line = tokens[j].line;
            // find the opening brace, then match it
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end_line = tokens.get(j).map(|t| t.line).unwrap_or(usize::MAX);
            regions.push((start_line, end_line));
        }
        i = j + 1;
    }
    regions
}

// ---------------------------------------------------------------------------
// D001 — hash-order iteration

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Names declared (or assigned) with a `HashMap`/`HashSet` type in this
/// file: `name: HashMap<…>` (let, field, or parameter) and
/// `name = HashMap::new()`-style constructions.
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        // constructor form: `name = HashMap::new()` / `::default()` / `::from`
        if matches!(
            (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)),
            (Some(a), Some(b), Some(c))
                if a.is_punct(':') && b.is_punct(':')
                    && matches!(c.text.as_str(), "new" | "with_capacity" | "default" | "from")
        ) {
            if let Some(name) = assignment_target(tokens, i) {
                names.insert(name);
                continue;
            }
        }
        // type-position form: walk back over the type expression to the
        // `name :` that introduces it
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            let skip = match prev.kind {
                TokenKind::Ident => !matches!(prev.text.as_str(), "fn" | "let" | "mut" | "pub"),
                TokenKind::Punct => matches!(prev.text.as_str(), "<" | "&" | "," | "'" | "(" | ":"),
                TokenKind::LineComment => true,
            };
            if prev.is_punct(':') && j >= 2 && tokens[j - 2].kind == TokenKind::Ident {
                let candidate = &tokens[j - 2];
                // `std::collections::HashMap` path segments are `X ::` —
                // keep walking through them, a real binding is `name :`
                if j >= 3 && tokens[j - 3].is_punct(':') {
                    j -= 2;
                    continue;
                }
                if !matches!(candidate.text.as_str(), "let" | "mut" | "pub" | "fn") {
                    names.insert(candidate.text.clone());
                }
                break;
            }
            if !skip {
                break;
            }
            j -= 1;
        }
    }
    names
}

/// For `… name = HashMap…` at position `i` of the `HashMap` token, walk
/// back over `=` to the assigned name.
fn assignment_target(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // allow `name = HashMap` and `name: Ty = HashMap` — walk back to `=`
    while j > 0 && !tokens[j - 1].is_punct('=') {
        let prev = &tokens[j - 1];
        let type_ish = match prev.kind {
            TokenKind::Ident => true,
            TokenKind::Punct => matches!(prev.text.as_str(), "<" | ">" | "&" | "," | "'" | ":"),
            TokenKind::LineComment => true,
        };
        if !type_ish {
            return None;
        }
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let name = tokens[..j - 1]
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident)?;
    if matches!(name.text.as_str(), "let" | "mut") {
        return None;
    }
    Some(name.text.clone())
}

fn d001_hash_iteration(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let names = hash_typed_names(tokens);
    if names.is_empty() {
        return;
    }
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::LineComment)
        .collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !names.contains(&tok.text) {
            continue;
        }
        // method-call iteration: `name.iter()`, `name.drain(…)`, …
        if let (Some(dot), Some(m)) = (code.get(i + 1), code.get(i + 2)) {
            if dot.is_punct('.')
                && m.kind == TokenKind::Ident
                && ITER_METHODS.contains(&m.text.as_str())
                && code
                    .get(i + 3)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
            {
                out.push(Finding {
                    rule: RuleId::D001,
                    path: rel.to_string(),
                    line: tok.line,
                    message: format!(
                        "`{}.{}` iterates a HashMap/HashSet on a determinism-scoped path — \
                         use BTreeMap/BTreeSet or sort explicitly",
                        tok.text, m.text
                    ),
                });
                continue;
            }
        }
        // for-loop iteration: `for … in &name {` / `for … in name {`
        // (look back for `in` within the loop header; a following `.` means
        // a method chain decides, handled above or keyed — skip it here)
        let direct = code
            .get(i + 1)
            .is_none_or(|t| !t.is_punct('.') && !t.is_punct('['));
        if direct {
            let mut j = i;
            let mut header = false;
            while j > 0 {
                let t = &code[j - 1];
                if t.is_ident("in") {
                    header = true;
                    break;
                }
                // only `&`, `mut` and the map expression itself may sit
                // between `in` and the iterated name
                let benign = t.is_punct('&')
                    || t.is_ident("mut")
                    || t.is_punct('*')
                    || t.kind == TokenKind::Ident
                    || t.is_punct('.');
                if !benign {
                    break;
                }
                j -= 1;
            }
            if header {
                out.push(Finding {
                    rule: RuleId::D001,
                    path: rel.to_string(),
                    line: tok.line,
                    message: format!(
                        "`for … in {}` iterates a HashMap/HashSet on a determinism-scoped \
                         path — use BTreeMap/BTreeSet or sort explicitly",
                        tok.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D002 — wall clock

fn d002_wall_clock(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for tok in tokens {
        if tok.is_ident("Instant") || tok.is_ident("SystemTime") {
            out.push(Finding {
                rule: RuleId::D002,
                path: rel.to_string(),
                line: tok.line,
                message: format!(
                    "`{}` reads the wall clock — simulation code must use SimTime; \
                     only the crates on the D002 allowlist may time real execution",
                    tok.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D003 — unseeded randomness

fn d003_unseeded_rng(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::LineComment)
        .collect();
    for (i, tok) in code.iter().enumerate() {
        let hit = if tok.is_ident("thread_rng")
            || tok.is_ident("from_entropy")
            || tok.is_ident("OsRng")
        {
            Some(tok.text.as_str())
        } else if tok.is_ident("random")
            && i >= 3
            && code[i - 1].is_punct(':')
            && code[i - 2].is_punct(':')
            && code[i - 3].is_ident("rand")
        {
            Some("rand::random")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(Finding {
                rule: RuleId::D003,
                path: rel.to_string(),
                line: tok.line,
                message: format!(
                    "`{what}` draws unseeded randomness — every RNG must be seeded from the \
                     manifest (ChaCha8Rng::seed_from_u64) so runs replay exactly"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D004 — unwrap/expect budget

fn d004_unwrap_budget(
    rel: &str,
    tokens: &[Token],
    out: &mut Vec<Finding>,
    in_test: &dyn Fn(usize) -> bool,
) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::LineComment)
        .collect();
    for (i, tok) in code.iter().enumerate() {
        let is_call = (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call && !in_test(tok.line) {
            out.push(Finding {
                rule: RuleId::D004,
                path: rel.to_string(),
                line: tok.line,
                message: format!(
                    "`.{}()` can panic on a library path — return a Result, or justify the \
                     invariant with `detlint::allow(D004): reason`",
                    tok.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D005 — unsafe

fn d005_unsafe(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for tok in tokens {
        if tok.is_ident("unsafe") {
            out.push(Finding {
                rule: RuleId::D005,
                path: rel.to_string(),
                line: tok.line,
                message: "`unsafe` outside vendor/ — first-party crates carry \
                          #![forbid(unsafe_code)]; keep it that way"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn scope(rel: &'static str) -> FileScope<'static> {
        FileScope {
            rel_path: rel,
            d001: true,
            d002_allowed: false,
            d004: true,
        }
    }

    fn lint(src: &str) -> Vec<Finding> {
        lint_file(scope("crates/x/src/lib.rs"), &tokenize(src))
    }

    #[test]
    fn d001_fires_on_iteration_not_lookup() {
        let src = r#"
            fn f(map: HashMap<u32, u32>) {
                let _ = map.get(&1);            // keyed lookup: fine
                for (k, v) in map.iter() {}     // iteration: finding
                for k in &map {}                // iteration: finding
            }
        "#;
        let hits: Vec<_> = lint(src)
            .into_iter()
            .filter(|f| f.rule == RuleId::D001)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn d001_sees_constructor_declared_maps() {
        let src = "fn f() { let seen = HashMap::new(); for x in seen.keys() {} }";
        assert!(lint(src).iter().any(|f| f.rule == RuleId::D001));
    }

    #[test]
    fn d004_skips_cfg_test_modules() {
        let src = r#"
            fn lib_path() { opt.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { opt.unwrap(); }
            }
        "#;
        let hits: Vec<_> = lint(src)
            .into_iter()
            .filter(|f| f.rule == RuleId::D004)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn allow_on_same_line_and_line_above_suppresses() {
        let src = r#"
            fn f() {
                opt.unwrap(); // detlint::allow(D004): checked two lines up
                // detlint::allow(D004): heap non-empty by loop guard
                opt.unwrap();
            }
        "#;
        let findings = lint(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// detlint::allow(D004): nothing here needs this\nfn f() {}";
        let findings = lint(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Allow);
        assert!(findings[0].message.contains("unused"));
    }

    #[test]
    fn allow_without_reason_is_reported_and_does_not_suppress() {
        let src = "fn f() { opt.unwrap() } // detlint::allow(D004)";
        let findings = lint(src);
        assert!(findings.iter().any(|f| f.rule == RuleId::Allow));
        assert!(findings.iter().any(|f| f.rule == RuleId::D004));
    }

    #[test]
    fn prose_mentions_of_the_syntax_are_not_annotations() {
        let src = "// the syntax is `detlint::allow(D00x): reason`\nfn f() {}";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn unknown_rule_id_is_reported() {
        let src = "fn f() {} // detlint::allow(D999): no such rule";
        let findings = lint(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"), "{findings:?}");
    }

    #[test]
    fn d002_flags_clock_unless_crate_allowlisted() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint(src).iter().any(|f| f.rule == RuleId::D002));
        let allowed = FileScope {
            d002_allowed: true,
            ..scope("crates/bench/src/lib.rs")
        };
        let findings = lint_file(allowed, &tokenize(src));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn d003_flags_every_entropy_source() {
        for src in [
            "fn f() { let mut r = thread_rng(); }",
            "fn f() { let mut r = ChaCha8Rng::from_entropy(); }",
            "fn f() { let x: u8 = rand::random(); }",
        ] {
            assert!(
                lint(src).iter().any(|f| f.rule == RuleId::D003),
                "missed in {src}"
            );
        }
    }

    #[test]
    fn d003_does_not_flag_unrelated_random_idents() {
        let src = "fn f() { let random = 4; random_walk(); }";
        assert!(lint(src).iter().all(|f| f.rule != RuleId::D003));
    }

    #[test]
    fn d005_flags_unsafe() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        assert!(lint(src).iter().any(|f| f.rule == RuleId::D005));
    }

    #[test]
    fn d004_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        let findings = lint(src);
        assert!(findings.is_empty(), "{findings:?}");
    }
}

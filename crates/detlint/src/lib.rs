//! # detlint — the determinism linter
//!
//! Every guarantee this repo makes — the golden-pinned scenario digests,
//! the model-checker lassos, the frozen Bernoulli RNG stream — rests on
//! one contract: **same manifest + seed ⇒ byte-identical trace**. This
//! crate enforces that contract statically, as named, testable rules over
//! the first-party source tree:
//!
//! | rule | violation |
//! |------|-----------|
//! | D001 | `HashMap`/`HashSet` *iteration* on determinism-scoped paths (keyed lookup is fine) |
//! | D002 | wall-clock reads (`Instant`, `SystemTime`) outside the crate allowlist |
//! | D003 | unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`, `OsRng`) anywhere |
//! | D004 | `unwrap()`/`expect()` on library paths without a justification |
//! | D005 | `unsafe` outside `vendor/` |
//!
//! Suppression is explicit: `// detlint::allow(D00x): reason` on the
//! offending line or on its own line directly above it. Reasons are
//! mandatory and unused suppressions are findings, so the audit trail
//! cannot rot. Crate-level scoping lives in `detlint.toml` at the repo
//! root. See `docs/DETERMINISM.md` for the contract in prose.
//!
//! The scanner is deliberately token-level (comments, strings, char
//! literals and cfg(test) regions are understood; types are matched by
//! local declaration, not inference) — the offline vendor set has no
//! `syn`, and the rules only need lexical precision plus a little
//! declared-type bookkeeping.

#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use rules::{Finding, RuleId};
pub use scan::run_check;

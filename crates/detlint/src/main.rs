//! CLI for the determinism linter. `--check` is the CI gate; `--rng-audit`
//! prints the shared-RNG draw-site inventory (always exit 0).

#![forbid(unsafe_code)]

use detlint::audit::{render, rng_audit};
use detlint::config::Config;
use detlint::scan::run_check;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — determinism linter for this repository

USAGE:
    detlint [--check] [--rng-audit] [--root DIR] [--config FILE]

MODES:
    (default) / --check   lint all first-party sources; exit 1 on findings
    --rng-audit           inventory shared-RNG draw/handoff sites; exit 0

OPTIONS:
    --root DIR            repository root to scan (default: .)
    --config FILE         config path (default: <root>/detlint.toml)
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut audit_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--rng-audit" => audit_mode = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if audit_mode {
        return match rng_audit(&root, &cfg) {
            Ok(sites) => {
                print!("{}", render(&sites));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("detlint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_check(&root, &cfg) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("detlint: clean — {scanned} files, 0 findings");
                ExitCode::SUCCESS
            } else {
                println!("detlint: {} finding(s) in {scanned} files", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("detlint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

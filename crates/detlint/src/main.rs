//! CLI for the determinism linter. `--check` is the CI gate; `--rng-audit`
//! prints the shared-RNG draw-site inventory, and `--baseline FILE` turns
//! that inventory into a second gate: sites not present in the checked-in
//! baseline fail the run by name.

#![forbid(unsafe_code)]

use detlint::audit::{new_sites, parse_baseline, render, rng_audit, serialize_baseline};
use detlint::config::Config;
use detlint::scan::run_check;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — determinism linter for this repository

USAGE:
    detlint [--check] [--rng-audit] [--baseline FILE [--update-baseline]]
            [--root DIR] [--config FILE]

MODES:
    (default) / --check   lint all first-party sources; exit 1 on findings
    --rng-audit           inventory shared-RNG draw/handoff sites; exit 0
    --rng-audit --baseline FILE
                          compare the inventory against FILE; exit 1 naming
                          every site the baseline does not cover (line
                          numbers may drift; path/kind/detail may not)
    --rng-audit --baseline FILE --update-baseline
                          rewrite FILE from the current inventory

OPTIONS:
    --root DIR            repository root to scan (default: .)
    --config FILE         config path (default: <root>/detlint.toml)
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut audit_mode = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--rng-audit" => audit_mode = true,
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if baseline_path.is_some() && !audit_mode {
        return usage_error("--baseline only applies to --rng-audit");
    }
    if update_baseline && baseline_path.is_none() {
        return usage_error("--update-baseline needs --baseline FILE");
    }

    let config_path = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if audit_mode {
        let sites = match rng_audit(&root, &cfg) {
            Ok(sites) => sites,
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_path) = baseline_path else {
            print!("{}", render(&sites));
            return ExitCode::SUCCESS;
        };
        if update_baseline {
            let header = "\
# Shared-RNG consumption baseline — the sites `detlint --rng-audit` is\n\
# allowed to find. CI fails on any site not listed here (matched on\n\
# path/kind/detail; line numbers are informational and may drift).\n\
# Regenerate after an intentional change with:\n\
#   cargo run -p detlint -- --rng-audit --baseline rng-audit.baseline --update-baseline\n";
            let body = format!("{header}{}", serialize_baseline(&sites));
            return match std::fs::write(&baseline_path, body) {
                Ok(()) => {
                    println!(
                        "detlint: wrote {} site(s) to {}",
                        sites.len(),
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("detlint: cannot write {}: {e}", baseline_path.display());
                    ExitCode::FAILURE
                }
            };
        }
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))
            .and_then(|text| parse_baseline(&text))
        {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fresh = new_sites(&sites, &baseline);
        if fresh.is_empty() {
            println!(
                "detlint: rng audit clean — {} site(s), all covered by {}",
                sites.len(),
                baseline_path.display()
            );
            return ExitCode::SUCCESS;
        }
        for s in &fresh {
            println!("NEW {}:{} {} {}", s.path, s.line, s.kind, s.detail);
        }
        println!(
            "detlint: {} shared-RNG site(s) not in {} — draw from the per-node \
             streams (netsim::NodeStreams) instead, or regenerate the baseline \
             with --update-baseline if the site is deliberate",
            fresh.len(),
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }

    match run_check(&root, &cfg) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("detlint: clean — {scanned} files, 0 findings");
                ExitCode::SUCCESS
            } else {
                println!("detlint: {} finding(s) in {scanned} files", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("detlint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

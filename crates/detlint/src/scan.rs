//! Repo walking and per-file scope classification.
//!
//! The walk is deterministic (directory entries sorted by name) so report
//! order, and therefore CI output, is stable across machines — the linter
//! holds itself to the contract it enforces.

use crate::config::Config;
use crate::lexer::tokenize;
use crate::rules::{lint_file, FileScope, Finding};
use std::path::{Path, PathBuf};

/// Collect every first-party `.rs` file under the configured roots,
/// repo-relative with `/` separators, sorted.
pub fn source_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    for include in &cfg.include {
        let dir = root.join(include);
        if dir.is_file() {
            push_if_rs(&mut files, root, &dir, cfg);
        } else if dir.is_dir() {
            walk(root, &dir, cfg, &mut files)?;
        }
        // a missing include root is not an error: `tests/` may not exist
        // in a fixture tree
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, cfg, out)?;
        } else {
            push_if_rs(out, root, &path, cfg);
        }
    }
    Ok(())
}

fn push_if_rs(out: &mut Vec<String>, root: &Path, path: &Path, cfg: &Config) {
    let rel = rel_path(root, path);
    if path.extension().is_some_and(|e| e == "rs")
        && !cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
    {
        out.push(rel);
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate directory name a repo-relative path belongs to
/// (`crates/netsim/src/sim.rs` → `netsim`); the workspace root package
/// for everything else.
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(rel)
    } else {
        "grp-repro"
    }
}

fn under_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

/// Lint every configured source file under `root`. Findings come back in
/// (path, line) order.
pub fn run_check(root: &Path, cfg: &Config) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = source_files(root, cfg)?;
    let mut findings = Vec::new();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let tokens = tokenize(&text);
        let scope = FileScope {
            rel_path: rel,
            d001: under_any(rel, &cfg.d001_paths),
            d002_allowed: cfg.d002_allow_crates.iter().any(|c| c == crate_of(rel)),
            d004: under_any(rel, &cfg.d004_library_paths),
        };
        findings.extend(lint_file(scope, &tokens));
    }
    Ok((findings, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths_to_crate_dirs() {
        assert_eq!(crate_of("crates/netsim/src/sim.rs"), "netsim");
        assert_eq!(crate_of("crates/runtime/src/cluster.rs"), "runtime");
        assert_eq!(crate_of("src/lib.rs"), "grp-repro");
        assert_eq!(crate_of("tests/end_to_end.rs"), "grp-repro");
    }
}

//! `detlint.toml` — crate-level scoping for the determinism rules.
//!
//! The config answers exactly three questions the rules cannot answer from
//! a single file's tokens: *which* paths are determinism-critical (D001),
//! *which* crates are allowed to read the wall clock (D002), and *which*
//! paths count as library code for the unwrap/expect budget (D004).
//! Everything else — the suppression syntax, the rule logic — is fixed in
//! code so the contract cannot be quietly widened from config.
//!
//! The file is parsed with the same TOML-subset parser the scenario
//! manifests use ([`scenarios::toml`]), so the linter and the manifests
//! share one grammar and one set of parser bugs.

use scenarios::toml::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `detlint.toml`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Directories (repo-relative) scanned for first-party sources.
    pub include: Vec<String>,
    /// Path prefixes excluded from the scan (vendor, fixtures, target).
    pub exclude: Vec<String>,
    /// D001 scope: path prefixes of determinism-critical code.
    pub d001_paths: Vec<String>,
    /// D002 allowlist: crate directory names that may read the wall clock.
    pub d002_allow_crates: Vec<String>,
    /// D004 scope: path prefixes whose `src/` counts as library code.
    pub d004_library_paths: Vec<String>,
    /// `--rng-audit` scope: path prefixes inventoried for RNG draw sites.
    pub rng_audit_paths: Vec<String>,
}

/// A config-loading failure, with enough context to fix the file.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detlint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Load and validate a config file.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Config::parse(&text)
    }

    /// Parse config text. Unknown tables or keys are errors: a typo in a
    /// scoping key must not silently widen or narrow the contract.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let root = toml::parse(text).map_err(|e| ConfigError(e.to_string()))?;
        for key in root.keys() {
            if !matches!(key.as_str(), "scan" | "rules" | "rng_audit") {
                return Err(ConfigError(format!("unknown table `[{key}]`")));
            }
        }
        let scan = table(&root, "scan")?;
        for key in scan.keys() {
            if !matches!(key.as_str(), "include" | "exclude") {
                return Err(ConfigError(format!("unknown key `scan.{key}`")));
            }
        }
        let rules = table(&root, "rules")?;
        for key in rules.keys() {
            if !matches!(key.as_str(), "D001" | "D002" | "D004") {
                return Err(ConfigError(format!(
                    "unknown table `[rules.{key}]` (only D001/D002/D004 take config; \
                     D003 and D005 are unconditional)"
                )));
            }
        }
        let cfg = Config {
            include: str_list(scan, "include", "scan")?,
            exclude: str_list(scan, "exclude", "scan").unwrap_or_default(),
            d001_paths: rule_list(rules, "D001", "paths")?,
            d002_allow_crates: rule_list(rules, "D002", "allow_crates")?,
            d004_library_paths: rule_list(rules, "D004", "library_paths")?,
            rng_audit_paths: match root.get("rng_audit") {
                Some(v) => {
                    let t = v
                        .as_table()
                        .ok_or_else(|| ConfigError("`rng_audit` must be a table".into()))?;
                    str_list(t, "paths", "rng_audit")?
                }
                None => Vec::new(),
            },
        };
        if cfg.include.is_empty() {
            return Err(ConfigError(
                "`scan.include` must name at least one root".into(),
            ));
        }
        Ok(cfg)
    }
}

fn table<'a>(
    root: &'a BTreeMap<String, Value>,
    name: &str,
) -> Result<&'a BTreeMap<String, Value>, ConfigError> {
    root.get(name)
        .and_then(Value::as_table)
        .ok_or_else(|| ConfigError(format!("missing table `[{name}]`")))
}

fn rule_list(
    rules: &BTreeMap<String, Value>,
    rule: &str,
    key: &str,
) -> Result<Vec<String>, ConfigError> {
    let t = rules
        .get(rule)
        .and_then(Value::as_table)
        .ok_or_else(|| ConfigError(format!("missing table `[rules.{rule}]`")))?;
    for k in t.keys() {
        if k != key {
            return Err(ConfigError(format!("unknown key `rules.{rule}.{k}`")));
        }
    }
    str_list(t, key, &format!("rules.{rule}"))
}

fn str_list(t: &BTreeMap<String, Value>, key: &str, ctx: &str) -> Result<Vec<String>, ConfigError> {
    let v = t
        .get(key)
        .ok_or_else(|| ConfigError(format!("missing key `{ctx}.{key}`")))?;
    let arr = v
        .as_array()
        .ok_or_else(|| ConfigError(format!("`{ctx}.{key}` must be an array of strings")))?;
    arr.iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ConfigError(format!("`{ctx}.{key}` must be an array of strings")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [scan]
        include = ["crates"]
        exclude = ["crates/detlint/tests/fixtures"]

        [rules.D001]
        paths = ["crates/netsim/src"]

        [rules.D002]
        allow_crates = ["runtime"]

        [rules.D004]
        library_paths = ["crates/netsim/src"]

        [rng_audit]
        paths = ["crates/netsim/src"]
    "#;

    #[test]
    fn minimal_config_parses() {
        let cfg = Config::parse(MINIMAL).unwrap();
        assert_eq!(cfg.include, ["crates"]);
        assert_eq!(cfg.d002_allow_crates, ["runtime"]);
        assert_eq!(cfg.rng_audit_paths, ["crates/netsim/src"]);
    }

    #[test]
    fn unknown_rule_table_is_rejected() {
        let bad = MINIMAL.replace("[rules.D002]", "[rules.D009]");
        let err = Config::parse(&bad).unwrap_err();
        assert!(err.0.contains("D009"), "{err}");
    }

    #[test]
    fn typoed_key_is_rejected_not_ignored() {
        let bad = MINIMAL.replace("allow_crates", "alow_crates");
        assert!(Config::parse(&bad).is_err());
    }

    #[test]
    fn missing_scan_include_is_rejected() {
        let bad = MINIMAL.replace("include", "includes");
        assert!(Config::parse(&bad).is_err());
    }
}

//! B1 — micro-cost of the `ant` r-operator and list maintenance, the
//! innermost loop of `compute()`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::NodeId;
use grp_core::ancestor_list::AncestorList;
use grp_core::marks::Mark;
use std::hint::black_box;

fn list_with(levels: usize, width: usize, offset: u64) -> AncestorList {
    AncestorList::from_levels(
        (0..levels)
            .map(|l| {
                (0..width)
                    .map(|w| (NodeId(offset + (l * width + w) as u64), Mark::Clear))
                    .collect()
            })
            .collect(),
    )
}

fn bench_ant(c: &mut Criterion) {
    let mut group = c.benchmark_group("ant_operator");
    group.sample_size(40);
    for &(levels, width) in &[(3usize, 2usize), (5, 4), (7, 8)] {
        let a = list_with(levels, width, 0);
        let b = list_with(levels, width, (levels * width / 2) as u64);
        group.bench_with_input(
            BenchmarkId::new("ant", format!("{levels}x{width}")),
            &(a, b),
            |bencher, (a, b)| bencher.iter(|| black_box(a.ant(black_box(b)))),
        );
    }
    group.finish();
}

fn bench_merge_and_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_maintenance");
    group.sample_size(40);
    let a = list_with(5, 6, 0);
    let b = list_with(5, 6, 15);
    group.bench_function("merge_5x6", |bencher| {
        bencher.iter(|| black_box(a.merge(black_box(&b))))
    });
    group.bench_function("remove_marked_5x6", |bencher| {
        bencher.iter(|| {
            let mut l = a.clone();
            l.remove_marked_except(NodeId(0));
            black_box(l)
        })
    });
    group.bench_function("good_list_5x6", |bencher| {
        bencher.iter(|| black_box(grp_core::good_list(NodeId(1), black_box(&a), 6)))
    });
    group.bench_function("compatible_list_5x6", |bencher| {
        bencher.iter(|| {
            black_box(grp_core::compatible_list(
                NodeId(1),
                black_box(&a),
                black_box(&b),
                6,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ant, bench_merge_and_filters);
criterion_main!(benches);

//! B6 — raw simulator throughput: events per second for steady-state GRP
//! rounds on explicit and spatial topologies.

use bench::converged_grp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::NodeId;
use experiments::e1_convergence::sized_rgg;
use grp_core::{GrpConfig, GrpNode};
use netsim::mobility::RandomWaypoint;
use netsim::radio::UnitDisk;
use netsim::{SimConfig, Simulator, TopologyMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_steady_state_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rounds");
    group.sample_size(10);
    for &n in &[16usize, 48] {
        let topology = sized_rgg(n, 5);
        let sim = converged_grp(&topology, 3, 5);
        group.bench_with_input(BenchmarkId::new("explicit", n), &sim, |bencher, sim| {
            bencher.iter_batched(
                || sim_clone(sim, &topology),
                |mut s| {
                    s.run_rounds(5);
                    black_box(s.stats())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The simulator is not `Clone` (it holds boxed models), so rebuild an
/// equivalent one for each batch.
fn sim_clone(_sim: &Simulator<GrpNode>, topology: &dyngraph::Graph) -> Simulator<GrpNode> {
    converged_grp(topology, 3, 5);
    experiments::runner::grp_simulator(topology, 3, 5)
}

fn bench_spatial_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_spatial");
    group.sample_size(10);
    let n = 24;
    group.bench_function("waypoint_24", |bencher| {
        bencher.iter_batched(
            || {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                let mobility = RandomWaypoint::new(n, 120.0, 120.0, (0.01, 0.02), &mut rng);
                let mut sim = Simulator::new(
                    SimConfig {
                        seed: 9,
                        ..Default::default()
                    },
                    TopologyMode::Spatial {
                        radio: Box::new(UnitDisk::new(35.0)),
                        mobility: Box::new(mobility),
                    },
                );
                sim.add_nodes((0..n as u64).map(|i| GrpNode::new(NodeId(i), GrpConfig::new(3))));
                sim
            },
            |mut sim| {
                sim.run_rounds(5);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_steady_state_rounds, bench_spatial_rounds);
criterion_main!(benches);

//! B3 / E1 — wall-clock cost of full convergence runs (Table 1 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::e1_convergence::sized_rgg;
use experiments::runner::{convergence_budget, run_grp};
use std::hint::black_box;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_rgg");
    group.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let dmax = 3;
        let topology = sized_rgg(n, 1);
        let rounds = convergence_budget(n, dmax);
        group.bench_with_input(
            BenchmarkId::new("nodes", n),
            &topology,
            |bencher, topology| {
                bencher.iter(|| black_box(run_grp(topology, dmax, rounds, 1).convergence_round()))
            },
        );
    }
    group.finish();
}

fn bench_convergence_dmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_dmax");
    group.sample_size(10);
    let n = 24;
    let topology = sized_rgg(n, 2);
    for &dmax in &[2usize, 4, 6] {
        let rounds = convergence_budget(n, dmax);
        group.bench_with_input(BenchmarkId::new("dmax", dmax), &dmax, |bencher, &dmax| {
            bencher.iter(|| black_box(run_grp(&topology, dmax, rounds, 2).convergence_round()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence, bench_convergence_dmax);
criterion_main!(benches);

//! B7 / E5 — GRP vs. the clustering baselines on identical workloads:
//! cost of one simulated round for each algorithm.

use baselines::{KHopClustering, MaxMinDCluster, NeighborhoodBall};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::e1_convergence::sized_rgg;
use grp_core::{GrpConfig, GrpNode};
use netsim::{Protocol, SimConfig, Simulator, TopologyMode};
use std::hint::black_box;

fn build<P, F>(topology: &dyngraph::Graph, make: F) -> Simulator<P>
where
    P: Protocol,
    F: Fn(dyngraph::NodeId) -> P,
{
    let mut sim = Simulator::new(
        SimConfig {
            seed: 11,
            ..Default::default()
        },
        TopologyMode::Explicit(topology.clone()),
    );
    sim.add_nodes(topology.nodes().map(make).collect::<Vec<_>>());
    sim.run_rounds(20);
    sim
}

fn bench_protocol_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round_cost");
    group.sample_size(10);
    let n = 32;
    let dmax = 4;
    let topology = sized_rgg(n, 11);

    group.bench_function("grp", |bencher| {
        bencher.iter_batched(
            || build(&topology, |id| GrpNode::new(id, GrpConfig::new(dmax))),
            |mut sim| {
                sim.run_rounds(5);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("khop_min_id", |bencher| {
        bencher.iter_batched(
            || build(&topology, |id| KHopClustering::new(id, dmax)),
            |mut sim| {
                sim.run_rounds(5);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("maxmin_dcluster", |bencher| {
        bencher.iter_batched(
            || build(&topology, |id| MaxMinDCluster::new(id, dmax)),
            |mut sim| {
                sim.run_rounds(5);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("neighbourhood_ball", |bencher| {
        bencher.iter_batched(
            || build(&topology, |id| NeighborhoodBall::new(id, dmax)),
            |mut sim| {
                sim.run_rounds(5);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_rounds);
criterion_main!(benches);

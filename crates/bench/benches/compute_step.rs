//! B2 — per-node cost of one `compute()` round as the neighbourhood grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::NodeId;
use grp_core::{GrpConfig, GrpNode};
use std::hint::black_box;

/// A node that just received one message from each of `neighbours` peers,
/// every peer quoting a star of `peer_degree` further nodes.
fn loaded_node(neighbours: usize, peer_degree: usize, dmax: usize) -> GrpNode {
    let me = NodeId(0);
    let mut node = GrpNode::new(me, GrpConfig::new(dmax));
    for p in 0..neighbours {
        let peer = NodeId(1000 + p as u64);
        let mut peer_node = GrpNode::new(peer, GrpConfig::new(dmax));
        // the peer heard us and its own fan-out once
        let mut my_msg = node.build_message();
        my_msg.sender = me;
        peer_node.receive(my_msg);
        for f in 0..peer_degree {
            let fan = GrpNode::new(
                NodeId(2000 + (p * peer_degree + f) as u64),
                GrpConfig::new(dmax),
            );
            peer_node.receive(fan.build_message());
        }
        peer_node.on_round();
        node.receive(peer_node.build_message());
    }
    node
}

fn bench_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_round");
    group.sample_size(30);
    for &neighbours in &[2usize, 8, 16] {
        let template = loaded_node(neighbours, 4, 4);
        group.bench_with_input(
            BenchmarkId::new("neighbours", neighbours),
            &template,
            |bencher, template| {
                bencher.iter(|| {
                    let mut node = template.clone();
                    node.compute();
                    black_box(node)
                })
            },
        );
    }
    group.finish();
}

fn bench_build_message(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_message");
    group.sample_size(30);
    let mut node = loaded_node(8, 4, 4);
    node.on_round();
    group.bench_function("fanout_8x4", |bencher| {
        bencher.iter(|| black_box(node.build_message()))
    });
    group.finish();
}

criterion_group!(benches, bench_compute, bench_build_message);
criterion_main!(benches);

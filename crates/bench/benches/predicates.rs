//! B5 — cost of the specification predicate checkers (ΠA, ΠS, ΠM, ΠT, ΠC),
//! which dominate the experiment harness itself.

use bench::converged_grp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::e1_convergence::sized_rgg;
use grp_core::predicates::{pi_c, pi_t, SystemSnapshot};
use std::hint::black_box;

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicates");
    group.sample_size(20);
    for &n in &[10usize, 30] {
        let dmax = 3;
        let topology = sized_rgg(n, 3);
        let sim = converged_grp(&topology, dmax, 3);
        let snapshot = SystemSnapshot::from_simulator(&sim);
        group.bench_with_input(BenchmarkId::new("agreement", n), &snapshot, |b, s| {
            b.iter(|| black_box(s.agreement()))
        });
        group.bench_with_input(BenchmarkId::new("safety", n), &snapshot, |b, s| {
            b.iter(|| black_box(s.safety(dmax)))
        });
        group.bench_with_input(BenchmarkId::new("maximality", n), &snapshot, |b, s| {
            b.iter(|| black_box(s.maximality(dmax)))
        });
        group.bench_with_input(BenchmarkId::new("pi_t_pi_c", n), &snapshot, |b, s| {
            b.iter(|| black_box((pi_t(s, s, dmax), pi_c(s, s))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predicates);
criterion_main!(benches);

//! B4 / E4 — cost of the mobility + continuity-checking pipeline
//! (Figure 2 workload: highway convoy, ΠT/ΠC evaluation per round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyngraph::NodeId;
use experiments::runner::{grp_spatial_simulator, run_grp_on};
use metrics::ChurnAccumulator;
use netsim::mobility::Highway;
use netsim::radio::UnitDisk;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn continuity_run(n: usize, rounds: usize) -> u64 {
    let dmax = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mobility = Highway::new(n, 2, 600.0, 12.0, (0.002, 0.01), &mut rng);
    let radio = UnitDisk::new(30.0);
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let mut sim = grp_spatial_simulator(&ids, dmax, Box::new(radio), Box::new(mobility), 7);
    let run = run_grp_on(&mut sim, dmax, rounds);
    let mut acc = ChurnAccumulator::new();
    for pair in run.snapshots.windows(2) {
        acc.record(&pair[0], &pair[1], dmax);
    }
    acc.transitions
}

fn bench_continuity(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuity_highway");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        group.bench_with_input(BenchmarkId::new("vehicles", n), &n, |bencher, &n| {
            bencher.iter(|| black_box(continuity_run(n, 30)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_continuity);
criterion_main!(benches);

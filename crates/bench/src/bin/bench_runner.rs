//! `bench-runner` — execute the fixed perf workload matrix and emit the
//! repo's `BENCH_<date>.json` baseline.
//!
//! ```text
//! bench-runner [--quick] [--out DIR] [--filter SUBSTR]
//! ```
//!
//! * `--quick` drops the 10k row and halves the rounds (the CI profile);
//! * `--out DIR` chooses where `BENCH_<date>.json` lands (default `.`);
//! * `--filter SUBSTR` runs only the rows whose label contains `SUBSTR`
//!   (e.g. `--filter grp/random_walk/100000`) — for iterating on one row
//!   without paying for the whole matrix. A filtered run still writes the
//!   JSON artifact, so don't commit one as the baseline.
//!
//! Every workload runs the engine twice up to the brute-force ceiling —
//! spatial grid and all-pairs scan — asserting the two trace digests are
//! identical, then prints an events/sec summary table and writes the JSON
//! artifact. Exit code 0 iff every workload completed (and every digest
//! pair agreed).

#![forbid(unsafe_code)]

use bench::perf::{report_json, run_workload, summary_table, workload_matrix};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = PathBuf::from(".");
    let mut filter: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::from(2);
                };
                out_dir = PathBuf::from(dir);
            }
            "--filter" => {
                let Some(substr) = iter.next() else {
                    eprintln!("--filter requires a label substring argument");
                    return ExitCode::from(2);
                };
                filter = Some(substr.clone());
            }
            "--help" | "-h" => {
                println!("usage: bench-runner [--quick] [--out DIR] [--filter SUBSTR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut matrix = workload_matrix(quick);
    if let Some(substr) = &filter {
        matrix.retain(|w| w.label().contains(substr.as_str()));
        if matrix.is_empty() {
            eprintln!("--filter `{substr}` matches no workload label");
            return ExitCode::from(2);
        }
    }
    let mut results = Vec::with_capacity(matrix.len());
    for w in &matrix {
        eprintln!("running {} ({} rounds)...", w.label(), w.rounds);
        results.push(run_workload(w));
    }

    print!("{}", summary_table(&results));

    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = report_json(&results, quick, unix_secs);
    let (y, m, d) = bench::perf::civil_date(unix_secs);
    let path = out_dir.join(format!("BENCH_{y:04}-{m:02}-{d:02}.json"));
    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(&path, doc.pretty()) {
        eprintln!("cannot write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}

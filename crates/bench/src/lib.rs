//! Shared helpers for the Criterion benchmarks (see `benches/`).
//!
//! Each bench target regenerates the performance aspect of one experiment
//! family of the evaluation: the `ant` operator micro-cost, the per-round
//! `compute()` cost, full convergence runs (Table 1 / E1), continuity under
//! mobility (Figure 2 / E4), the predicate checkers, raw simulator
//! throughput and the GRP-vs-baseline comparison (Figure 3 / E5).

#![forbid(unsafe_code)]

use dyngraph::Graph;
use grp_core::GrpNode;
use netsim::Simulator;

pub mod perf;

/// Build a converged GRP simulator to benchmark steady-state rounds.
pub fn converged_grp(topology: &Graph, dmax: usize, seed: u64) -> Simulator<GrpNode> {
    let mut sim = experiments::runner::grp_simulator(topology, dmax, seed);
    sim.run_rounds(experiments::runner::convergence_budget(topology.node_count(), dmax) as u64);
    sim
}

//! The `bench-runner` workload matrix: wall-clock benchmarks of the full
//! simulation engine at scale, emitting the repo's machine-readable
//! `BENCH_<date>.json` perf baseline (schema documented in
//! `docs/PERFORMANCE.md`).
//!
//! Each workload runs the identical simulation several ways:
//!
//! * **grid vs brute** — spatial-grid index vs the historical all-pairs
//!   neighbour scan, cross-checking that both produce the same trace
//!   digest, so every bench run doubles as an engine-equivalence test (the
//!   largest sizes skip the brute twin — it is exactly the configuration
//!   the index was built to escape);
//! * **observed vs bare** — the primary run carries the [`TraceProbe`]
//!   observer; a twin runs with `NullObserver`, and their ratio is the
//!   *observer-overhead* column, so the baseline tracks instrumentation
//!   cost over time;
//! * **streaming vs clone-per-round** (GRP rows) — per-round configuration
//!   capture through the copy-on-write `SnapshotRecorder` vs the
//!   historical deep-clone-everything capture, timed inside the observer
//!   hook; this is the row that pins the observer redesign's speedup.

use dyngraph::NodeId;
use grp_core::observers::{GrpPipeline, SnapshotRecorder};
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::mobility::{Highway, RandomWalk, Stationary};
use netsim::protocol::Beacon;
use netsim::radio::UnitDisk;
use netsim::{
    CanonicalHasher, Contention, ContentionConfig, FaultKind, MobilityModel, NullObserver,
    Observer, Protocol, RngStreams, ScheduledFault, SimBuilder, SimConfig, SimTime, Simulator,
    TraceProbe, ViewProtocol,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use scenarios::json::Json;
use std::time::{Duration, Instant};

/// Radio range shared by all bench workloads (metres).
pub const RADIO_RANGE: f64 = 45.0;
/// Target mean node degree; the arena is scaled so density stays constant
/// as `n` grows.
pub const TARGET_DEGREE: f64 = 8.0;

/// Mobility family of a bench workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityKind {
    Stationary,
    RandomWalk,
    Highway,
}

impl MobilityKind {
    pub fn name(self) -> &'static str {
        match self {
            MobilityKind::Stationary => "stationary",
            MobilityKind::RandomWalk => "random_walk",
            MobilityKind::Highway => "highway",
        }
    }
}

/// Which channel model the workload routes its broadcasts through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKind {
    /// The default per-link Bernoulli channel (zero bookkeeping).
    Bernoulli,
    /// The per-cell contention channel at its default parameters — the twin
    /// rows that price the transmitter-window bookkeeping and cell-load
    /// scan added for the VANET scenarios.
    Contention,
}

impl ChannelKind {
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::Bernoulli => "bernoulli",
            ChannelKind::Contention => "contention",
        }
    }
}

/// What runs on the simulated nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    /// No protocol traffic at all: the run is pure mobility advancement
    /// plus neighbour discovery, isolating exactly the path the spatial
    /// index replaced. These rows carry the headline speedup claim.
    Discovery,
    /// O(1) handlers: engine throughput with traffic (event queue, radio,
    /// spatial index, mobility).
    Beacon,
    /// The full group-service protocol: end-to-end system throughput.
    Grp,
}

impl Payload {
    pub fn name(self) -> &'static str {
        match self {
            Payload::Discovery => "discovery",
            Payload::Beacon => "beacon",
            Payload::Grp => "grp",
        }
    }

    /// Largest node count for which the all-pairs twin still runs. The GRP
    /// rows keep the twin only at the smallest size (protocol work dwarfs
    /// the neighbour scan there, so the twin serves as an equivalence check
    /// rather than a meaningful speedup measurement).
    pub fn brute_force_ceiling(self) -> usize {
        match self {
            Payload::Discovery => 1_000,
            Payload::Beacon => 1_000,
            Payload::Grp => 100,
        }
    }
}

/// One cell of the workload matrix.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    pub payload: Payload,
    pub mobility: MobilityKind,
    pub channel: ChannelKind,
    pub nodes: usize,
    pub rounds: u64,
    pub seed: u64,
}

impl Workload {
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/{}",
            self.payload.name(),
            self.mobility.name(),
            self.nodes
        );
        match self.channel {
            ChannelKind::Bernoulli => base,
            ChannelKind::Contention => format!("{base}/contention"),
        }
    }
}

/// The fixed matrix: payload ∈ {beacon, grp} × n ∈ {100, 1k, 10k} ×
/// {stationary, random-walk, highway}. `--quick` drops the 10k rows (and
/// the 1k GRP rows) and halves the rounds so the CI job stays in seconds.
pub fn workload_matrix(quick: bool) -> Vec<Workload> {
    let discovery_sizes: &[(usize, u64)] = if quick {
        &[(100, 10), (1_000, 6)]
    } else {
        &[(100, 30), (1_000, 15), (10_000, 4)]
    };
    let beacon_sizes: &[(usize, u64)] = if quick {
        &[(100, 6), (1_000, 4)]
    } else {
        &[(100, 12), (1_000, 8), (10_000, 3)]
    };
    let grp_sizes: &[(usize, u64)] = if quick {
        &[(100, 4)]
    } else {
        &[(100, 8), (1_000, 4), (10_000, 2)]
    };
    let mut matrix = Vec::new();
    for (payload, sizes) in [
        (Payload::Discovery, discovery_sizes),
        (Payload::Beacon, beacon_sizes),
        (Payload::Grp, grp_sizes),
    ] {
        for &mobility in &[
            MobilityKind::Stationary,
            MobilityKind::RandomWalk,
            MobilityKind::Highway,
        ] {
            for &(nodes, rounds) in sizes {
                matrix.push(Workload {
                    payload,
                    mobility,
                    channel: ChannelKind::Bernoulli,
                    nodes,
                    rounds,
                    seed: 7,
                });
            }
        }
    }
    // contention twins of every traffic-carrying highway row: same workload
    // re-run through the per-cell contention channel, so the baseline prices
    // the channel's bookkeeping against its Bernoulli sibling (discovery
    // rows carry no broadcasts, so a twin would measure nothing)
    let twins: Vec<Workload> = matrix
        .iter()
        .filter(|w| w.mobility == MobilityKind::Highway && w.payload != Payload::Discovery)
        .map(|w| Workload {
            channel: ChannelKind::Contention,
            ..*w
        })
        .collect();
    matrix.extend(twins);
    if !quick {
        // the conurbation row: the full protocol at 100k nodes, the scale
        // the flat ancestor-list core and zero-copy fan-out target
        matrix.push(Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::RandomWalk,
            channel: ChannelKind::Bernoulli,
            nodes: 100_000,
            rounds: 2,
            seed: 7,
        });
        // the megacity profile row: engine throughput at 1M nodes, one
        // round of beacon traffic — the scale the calendar queue and
        // per-node RNG streams target (GRP at this size is blocked on the
        // hash-consed interning item in ROADMAP.md, not on the engine)
        matrix.push(Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::RandomWalk,
            channel: ChannelKind::Bernoulli,
            nodes: 1_000_000,
            rounds: 1,
            seed: 7,
        });
    }
    matrix
}

/// Arena side for `n` nodes at the target density.
pub fn arena_side(n: usize) -> f64 {
    (n as f64 * std::f64::consts::PI * RADIO_RANGE * RADIO_RANGE / TARGET_DEGREE).sqrt()
}

fn build_mobility(w: &Workload) -> Box<dyn MobilityModel> {
    let mut placement = ChaCha8Rng::seed_from_u64(w.seed ^ 0x5ce0_a71e_5eed);
    let side = arena_side(w.nodes);
    match w.mobility {
        MobilityKind::Stationary => {
            Box::new(Stationary::uniform(w.nodes, side, side, &mut placement))
        }
        MobilityKind::RandomWalk => {
            Box::new(RandomWalk::new(w.nodes, side, side, 0.02, &mut placement))
        }
        MobilityKind::Highway => Box::new(Highway::new(
            w.nodes,
            4,
            w.nodes as f64 * 5.0,
            15.0,
            (0.005, 0.015),
            &mut placement,
        )),
    }
}

fn build_simulator<P: Protocol, F: FnMut(dyngraph::NodeId) -> P>(
    w: &Workload,
    engine: EngineConfig,
    make_node: F,
) -> Simulator<P> {
    let config = SimConfig {
        seed: w.seed,
        // VANET-rate mobility: the topology refreshes ten times per compute
        // period, which is precisely the regime the spatial index targets.
        mobility_period: 100,
        spatial_index: engine.spatial_index,
        parallel_compute: engine.parallel_compute,
        rng_streams: engine.rng_streams,
        parallel_transport: engine.parallel_transport,
        ..Default::default()
    };
    let mut builder = SimBuilder::new()
        .config(config)
        .spatial(Box::new(UnitDisk::new(RADIO_RANGE)), build_mobility(w));
    if w.channel == ChannelKind::Contention {
        builder = builder.channel(Box::new(Contention::new(ContentionConfig::new(
            RADIO_RANGE,
        ))));
    }
    builder.nodes_by_id(w.nodes as u64, make_node).build()
}

/// Which engine configuration a bench execution runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    pub spatial_index: bool,
    pub parallel_compute: bool,
    pub rng_streams: RngStreams,
    pub parallel_transport: bool,
}

impl EngineConfig {
    /// The primary configuration: grid index, sequential compute, the
    /// legacy shared RNG stream — the regime every pre-migration baseline
    /// row was recorded under, kept as the comparable reference.
    pub const GRID: EngineConfig = EngineConfig {
        spatial_index: true,
        parallel_compute: false,
        rng_streams: RngStreams::Legacy,
        parallel_transport: false,
    };
    /// The historical all-pairs neighbour scan.
    pub const BRUTE: EngineConfig = EngineConfig {
        spatial_index: false,
        parallel_compute: false,
        rng_streams: RngStreams::Legacy,
        parallel_transport: false,
    };
    /// Grid index with batched parallel compute — must be digest-identical
    /// to [`GRID`](Self::GRID); every GRP row cross-checks it.
    pub const PARALLEL: EngineConfig = EngineConfig {
        spatial_index: true,
        parallel_compute: true,
        rng_streams: RngStreams::Legacy,
        parallel_transport: false,
    };
    /// The per-node-stream regime on the bucketed calendar engine,
    /// transport sequential: the baseline half of the transport twin. Its
    /// digest differs from [`GRID`](Self::GRID) — per-node streams are a
    /// different (one-time re-pinned) randomness regime.
    pub const STREAMS: EngineConfig = EngineConfig {
        spatial_index: true,
        parallel_compute: false,
        rng_streams: RngStreams::PerNode,
        parallel_transport: false,
    };
    /// Per-node streams with the send/delivery fan-out on — must be
    /// digest-identical to [`STREAMS`](Self::STREAMS); every traffic row
    /// cross-checks it (the thread count is a pure wall-clock knob).
    pub const TRANSPORT: EngineConfig = EngineConfig {
        spatial_index: true,
        parallel_compute: false,
        rng_streams: RngStreams::PerNode,
        parallel_transport: true,
    };
}

/// One engine execution of a workload.
#[derive(Clone, Debug)]
pub struct EngineRun {
    pub wall: Duration,
    pub events: u64,
    pub broadcasts: u64,
    pub delivered: u64,
    pub digest: String,
}

impl EngineRun {
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// How a bench execution is instrumented.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instrumentation {
    /// `NullObserver`: the uninstrumented reference (no digest).
    Bare,
    /// [`TraceProbe`]: per-round topology + stats, digest emitted — the
    /// primary configuration, equivalent to the historical snapshot loop.
    Trace,
}

fn drive<P: Protocol>(w: &Workload, mut sim: Simulator<P>, instr: Instrumentation) -> EngineRun {
    let mut probe = TraceProbe::new();
    let start = Instant::now();
    match instr {
        Instrumentation::Bare => sim.run_rounds_observed(w.rounds, &mut NullObserver),
        Instrumentation::Trace => sim.run_rounds_observed(w.rounds, &mut probe),
    }
    let wall = start.elapsed();
    let digest = match instr {
        Instrumentation::Bare => String::new(),
        Instrumentation::Trace => {
            let mut hasher = CanonicalHasher::new();
            hasher.feed_str(&w.label());
            hasher.feed_u64(w.seed);
            probe.trace().feed_digest(&mut hasher);
            hasher.finalize().to_hex()
        }
    };
    EngineRun {
        wall,
        events: sim.events_processed(),
        broadcasts: sim.stats().broadcasts,
        delivered: sim.stats().delivered,
        digest,
    }
}

/// Execute one workload on one engine configuration.
pub fn run_engine(w: &Workload, engine: EngineConfig, instr: Instrumentation) -> EngineRun {
    match w.payload {
        Payload::Discovery => {
            // no protocol instances: the event stream is mobility ticks
            // only, so the run isolates neighbour-discovery throughput
            let config = SimConfig {
                seed: w.seed,
                mobility_period: 100,
                spatial_index: engine.spatial_index,
                parallel_compute: engine.parallel_compute,
                rng_streams: engine.rng_streams,
                parallel_transport: engine.parallel_transport,
                ..Default::default()
            };
            let sim: Simulator<Beacon> = SimBuilder::new()
                .config(config)
                .spatial(Box::new(UnitDisk::new(RADIO_RANGE)), build_mobility(w))
                .build();
            drive(w, sim, instr)
        }
        Payload::Beacon => drive(w, build_simulator(w, engine, Beacon::new), instr),
        Payload::Grp => drive(
            w,
            build_simulator(w, engine, |id| GrpNode::new(id, GrpConfig::new(3))),
            instr,
        ),
    }
}

/// Delegating protocol wrapper that accumulates the wall-clock spent inside
/// the wrapped handlers (`on_message` / `on_compute` / `on_send`). Summed
/// over all nodes after a run it isolates *protocol compute* from engine
/// time — the column the flat ancestor-list core is benchmarked on.
struct TimedProto<P> {
    inner: P,
    spent: Duration,
}

impl<P: Protocol> Protocol for TimedProto<P> {
    type Message = P::Message;

    fn id(&self) -> dyngraph::NodeId {
        self.inner.id()
    }

    fn on_message(&mut self, from: dyngraph::NodeId, msg: Self::Message, now: SimTime) {
        let start = Instant::now();
        self.inner.on_message(from, msg, now);
        self.spent += start.elapsed();
    }

    fn on_compute(&mut self, now: SimTime) {
        let start = Instant::now();
        self.inner.on_compute(now);
        self.spent += start.elapsed();
    }

    fn on_send(&mut self, now: SimTime) -> Option<Self::Message> {
        let start = Instant::now();
        let msg = self.inner.on_send(now);
        self.spent += start.elapsed();
        msg
    }

    fn message_size(msg: &Self::Message) -> usize {
        P::message_size(msg)
    }

    fn corrupt_state(&mut self, rng: &mut rand_chacha::ChaCha8Rng) {
        self.inner.corrupt_state(rng);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Time spent inside the protocol handlers over one full GRP execution of
/// the workload (grid engine, uninstrumented observer).
pub fn run_protocol_probe(w: &Workload) -> Duration {
    let mut sim = build_simulator(w, EngineConfig::GRID, |id| TimedProto {
        inner: GrpNode::new(id, GrpConfig::new(3)),
        spent: Duration::ZERO,
    });
    sim.run_rounds_observed(w.rounds, &mut NullObserver);
    sim.protocols().map(|(_, p)| p.spent).sum()
}

/// The digest gate that actually reaches the `par_map` branch of
/// `handle_compute_batch`: under the matrix's staggered phases the
/// same-instant compute batches stay below the inline floor, so the
/// regular parallel twin exercises only the shared sequential code. This
/// guard drives a *lockstep* twin of the workload (stagger off — every
/// node's compute fires at the same instant, so the batch is the whole
/// population) sequentially and in parallel, and asserts both the trace
/// digest and every final protocol view are identical. Panics on
/// divergence; runs on every small GRP row, including the `--quick`
/// 100-node rows CI executes.
pub fn assert_lockstep_parallel_digests_match(w: &Workload) {
    let lockstep = |parallel_compute: bool| {
        let config = SimConfig {
            seed: w.seed,
            mobility_period: 100,
            stagger_phases: false,
            parallel_compute,
            ..Default::default()
        };
        let mut builder = SimBuilder::new()
            .config(config)
            .spatial(Box::new(UnitDisk::new(RADIO_RANGE)), build_mobility(w));
        if w.channel == ChannelKind::Contention {
            builder = builder.channel(Box::new(Contention::new(ContentionConfig::new(
                RADIO_RANGE,
            ))));
        }
        let mut sim: Simulator<GrpNode> = builder
            .nodes_by_id(w.nodes as u64, |id| GrpNode::new(id, GrpConfig::new(3)))
            .build();
        let mut probe = TraceProbe::new();
        sim.run_rounds_observed(w.rounds.min(2), &mut probe);
        let mut hasher = CanonicalHasher::new();
        probe.trace().feed_digest(&mut hasher);
        let views: Vec<_> = sim.protocols().map(|(_, p)| p.view().clone()).collect();
        (hasher.finalize(), views)
    };
    assert_eq!(
        lockstep(false),
        lockstep(true),
        "{}: lockstep parallel compute diverged from sequential",
        w.label()
    );
}

/// Times only what happens *inside* the wrapped observer's round hook, so
/// capture strategies can be compared without the simulation noise that
/// dominates whole-run wall clocks.
struct TimedCapture<O> {
    inner: O,
    spent: Duration,
    /// Per-round hook durations, for paired round-by-round comparison.
    per_round: Vec<Duration>,
}

impl<O> TimedCapture<O> {
    fn new(inner: O) -> Self {
        TimedCapture {
            inner,
            spent: Duration::ZERO,
            per_round: Vec::new(),
        }
    }
}

impl<P: Protocol, O: Observer<P>> Observer<P> for TimedCapture<O> {
    fn on_round_end(&mut self, round: u64, sim: &Simulator<P>) {
        let start = Instant::now();
        self.inner.on_round_end(round, sim);
        let elapsed = start.elapsed();
        self.spent += elapsed;
        self.per_round.push(elapsed);
    }
    fn on_delivery(
        &mut self,
        from: dyngraph::NodeId,
        to: dyngraph::NodeId,
        size: usize,
        now: SimTime,
    ) {
        self.inner.on_delivery(from, to, size, now);
    }
    fn on_topology_change(&mut self, now: SimTime) {
        self.inner.on_topology_change(now);
    }
    fn on_fault(&mut self, fault: &netsim::ScheduledFault, sim: &Simulator<P>) {
        self.inner.on_fault(fault, sim);
    }
    fn on_run_end(&mut self, sim: &Simulator<P>) {
        self.inner.on_run_end(sim);
    }
}

/// The historical per-round harness capture, reproduced verbatim: record
/// the engine trace (a deep graph clone into a `Vec`, as
/// `Simulator::snapshot()` did) *and* a deep-clone `SystemSnapshot` of the
/// topology plus every active view (as `run_with_snapshots` /
/// `snapshot_active` did). This is exactly what the scenario and
/// experiment runners paid per round before the observer redesign, and it
/// is the baseline the streaming pipeline races against.
#[derive(Default)]
struct ClonePerRound {
    trace: Vec<(SimTime, dyngraph::Graph, netsim::MessageStats)>,
    snapshots: Vec<SystemSnapshot>,
}

impl<P: ViewProtocol> Observer<P> for ClonePerRound {
    fn on_round_end(&mut self, _round: u64, sim: &Simulator<P>) {
        self.trace
            .push((sim.now(), sim.topology().clone(), sim.stats()));
        let views = sim
            .protocols()
            .filter(|&(id, _)| sim.is_active(id))
            .map(|(id, p)| (id, p.current_view()))
            .collect();
        self.snapshots
            .push(SystemSnapshot::new(sim.topology().clone(), views));
    }
}

/// Streaming (copy-on-write) vs clone-per-round history capture on one
/// workload: the cost of *recording the full configuration history*
/// (engine trace + per-round system snapshots), with both strategies
/// verified to record identical histories.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotRace {
    /// Time spent inside the streaming pipeline's round hook
    /// (`TraceProbe` + copy-on-write `SnapshotRecorder`).
    pub streaming: Duration,
    /// Time spent inside the historical deep-clone capture's round hook.
    pub clone: Duration,
    /// Rounds in which the streaming hook was strictly cheaper than the
    /// clone hook *of the same round* (both hooks run back-to-back within
    /// one round, so the paired comparison is immune to load spikes that
    /// poison a whole-run total).
    pub rounds_streaming_won: u32,
    /// Rounds compared.
    pub rounds: u32,
}

impl SnapshotRace {
    /// Clone-per-round capture time over streaming capture time.
    pub fn speedup(&self) -> f64 {
        let s = self.streaming.as_secs_f64();
        if s > 0.0 {
            self.clone.as_secs_f64() / s
        } else {
            f64::INFINITY
        }
    }
}

/// Race the two capture strategies over the same GRP workload and verify
/// they record identical histories.
/// Calls two observers' round hooks in alternating order (a-then-b on
/// even rounds, b-then-a on odd): whichever capture strategy runs first
/// pays the cold-cache cost of walking the just-written protocol views,
/// so a fixed order would systematically favour the second runner. The
/// alternation cancels that bias over the run. Non-round hooks forward in
/// fixed order (they are not timed).
struct AlternatingPair<A, B>(A, B);

impl<P: Protocol, A: Observer<P>, B: Observer<P>> Observer<P> for AlternatingPair<A, B> {
    fn on_round_end(&mut self, round: u64, sim: &Simulator<P>) {
        if round.is_multiple_of(2) {
            self.0.on_round_end(round, sim);
            self.1.on_round_end(round, sim);
        } else {
            self.1.on_round_end(round, sim);
            self.0.on_round_end(round, sim);
        }
    }
    fn on_delivery(
        &mut self,
        from: dyngraph::NodeId,
        to: dyngraph::NodeId,
        size: usize,
        now: SimTime,
    ) {
        self.0.on_delivery(from, to, size, now);
        self.1.on_delivery(from, to, size, now);
    }
    fn on_topology_change(&mut self, now: SimTime) {
        self.0.on_topology_change(now);
        self.1.on_topology_change(now);
    }
    fn on_fault(&mut self, fault: &netsim::ScheduledFault, sim: &Simulator<P>) {
        self.0.on_fault(fault, sim);
        self.1.on_fault(fault, sim);
    }
    fn on_run_end(&mut self, sim: &Simulator<P>) {
        self.0.on_run_end(sim);
        self.1.on_run_end(sim);
    }
}

pub fn run_snapshot_race(w: &Workload) -> SnapshotRace {
    let make = |id| GrpNode::new(id, GrpConfig::new(3));
    // Both strategies observe the SAME simulation, their hooks timed
    // back-to-back within each round (in alternating order — see
    // `AlternatingPair`): scheduler noise (other test threads, CI
    // neighbours) lands on both timing windows nearly equally instead of
    // poisoning whichever twin run it happened to coincide with, and the
    // captured histories are guaranteed comparable by construction.
    let mut sim = build_simulator(w, EngineConfig::GRID, make);
    let mut pair = AlternatingPair(
        TimedCapture::new((TraceProbe::new(), SnapshotRecorder::new())),
        TimedCapture::new(ClonePerRound::default()),
    );
    sim.run_rounds_observed(w.rounds, &mut pair);
    let AlternatingPair(streaming, clone) = pair;

    let (trace_probe, recorder) = streaming.inner;
    let legacy = clone.inner;
    assert_eq!(
        trace_probe.trace().len(),
        legacy.trace.len(),
        "{}: trace lengths differ",
        w.label()
    );
    for (new, old) in trace_probe.trace().snapshots().iter().zip(&legacy.trace) {
        assert!(
            new.at == old.0 && *new.topology == old.1 && new.stats == old.2,
            "{}: trace capture diverged",
            w.label()
        );
    }
    assert_eq!(
        recorder.into_snapshots(),
        legacy.snapshots,
        "{}: capture strategies recorded different histories",
        w.label()
    );
    let rounds_streaming_won = streaming
        .per_round
        .iter()
        .zip(&clone.per_round)
        .filter(|(s, c)| s < c)
        .count() as u32;
    SnapshotRace {
        streaming: streaming.spent,
        clone: clone.spent,
        rounds_streaming_won,
        rounds: streaming.per_round.len().min(clone.per_round.len()) as u32,
    }
}

/// Resilience twin of a GRP row: the identical workload re-run under a
/// fixed adversarial fault schedule (crash → stale restart → state
/// corruption → partition → heal → loss burst, all at deterministic
/// fractions of the horizon) with the MTTR/availability probe attached.
/// The row answers "what does recovery cost at this scale" alongside the
/// raw-throughput columns, and tracks the fault-path overhead over time.
#[derive(Clone, Copy, Debug)]
pub struct RobustnessRun {
    pub wall: Duration,
    /// Fraction of observed rounds that were legitimate.
    pub availability: f64,
    /// Mean rounds-to-recover over the recovered faults, if any.
    pub mean_mttr_rounds: Option<f64>,
    /// Slowest single recovery, if any.
    pub max_mttr_rounds: Option<u64>,
    /// Faults the run ended without recovering from.
    pub unrecovered: usize,
    /// Faults injected.
    pub faults: usize,
}

/// Largest node count the robustness twin runs at (one extra full GRP
/// execution per row; the fault path's scaling story is pinned by 10k).
const ROBUSTNESS_CEILING: usize = 10_000;

/// The fixed adversarial schedule for a workload: every fault kind the
/// engine supports except the spatially-bound region blackout, at
/// deterministic fractions of the run horizon.
fn robustness_schedule(w: &Workload) -> Vec<ScheduledFault> {
    let horizon = w.rounds * SimConfig::default().compute_period;
    let at = |percent: u64| SimTime(horizon * percent / 100);
    let victim = NodeId((w.nodes as u64) / 3);
    let pivot = (w.nodes as u64) / 2;
    vec![
        ScheduledFault::new(at(25), FaultKind::Crash(victim)),
        ScheduledFault::new(at(45), FaultKind::RestartStale(victim)),
        ScheduledFault::new(at(55), FaultKind::CorruptState(NodeId(0))),
        ScheduledFault::new(
            at(65),
            FaultKind::Partition {
                groups: vec![
                    (0..pivot).map(NodeId).collect(),
                    (pivot..w.nodes as u64).map(NodeId).collect(),
                ],
            },
        ),
        ScheduledFault::new(at(80), FaultKind::Heal),
        ScheduledFault::new(
            at(85),
            FaultKind::LossBurst {
                duration: horizon / 20,
            },
        ),
    ]
}

/// Run the robustness twin: the grid engine under the adversarial
/// schedule, measured by the resilience probe.
pub fn run_robustness(w: &Workload) -> RobustnessRun {
    let dmax = 3;
    let mut sim = build_simulator(w, EngineConfig::GRID, |id| {
        GrpNode::new(id, GrpConfig::new(dmax))
    });
    let schedule = robustness_schedule(w);
    let faults = schedule.len();
    sim.schedule_faults(schedule);
    let mut pipeline = GrpPipeline::new().with_resilience(dmax);
    let start = Instant::now();
    sim.run_rounds_observed(w.rounds, &mut pipeline);
    let wall = start.elapsed();
    let stats = pipeline
        .resilience
        .expect("the pipeline was built with the resilience probe")
        .into_stats();
    RobustnessRun {
        wall,
        availability: stats.availability(),
        mean_mttr_rounds: stats.mean_mttr_rounds(),
        max_mttr_rounds: stats.max_mttr_rounds(),
        unrecovered: stats.unrecovered(),
        faults,
    }
}

/// Grid run plus the twins: the all-pairs engine (below the ceiling), the
/// uninstrumented bare run, and — on GRP rows — the parallel-compute twin,
/// the protocol-time probe, the snapshot-capture race and the robustness
/// (adversarial-faults) twin.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    pub workload: Workload,
    pub grid: EngineRun,
    pub brute: Option<EngineRun>,
    /// The same grid configuration driven with `NullObserver`.
    pub bare: EngineRun,
    /// GRP rows: the grid configuration with `parallel_compute` on; its
    /// digest is asserted identical to `grid` — the sequential-vs-parallel
    /// guard CI runs on every bench invocation.
    pub parallel: Option<EngineRun>,
    /// Traffic rows (beacon + GRP): the per-node-stream calendar engine
    /// with sequential transport — the baseline half of the transport
    /// twin. Not digest-comparable to `grid` (different randomness
    /// regime, re-pinned once; see docs/DETERMINISM.md).
    pub streams: Option<EngineRun>,
    /// Traffic rows: per-node streams with `parallel_transport` on; its
    /// digest is asserted identical to `streams` — the transport
    /// fan-out guard CI runs on every bench invocation.
    pub transport: Option<EngineRun>,
    /// GRP rows: wall-clock spent inside the protocol handlers (compute /
    /// send / receive), isolating protocol work from engine work.
    pub protocol: Option<Duration>,
    pub snapshot: Option<SnapshotRace>,
    /// GRP rows up to [`ROBUSTNESS_CEILING`]: the adversarial-faults twin
    /// with its MTTR / availability verdict.
    pub robustness: Option<RobustnessRun>,
}

impl WorkloadResult {
    /// Brute wall time over grid wall time, when the twin ran.
    pub fn speedup(&self) -> Option<f64> {
        self.brute.as_ref().map(|b| {
            let g = self.grid.wall.as_secs_f64();
            if g > 0.0 {
                b.wall.as_secs_f64() / g
            } else {
                f64::INFINITY
            }
        })
    }

    /// Observed wall time over bare wall time — the instrumentation-cost
    /// column of the baseline (1.0 = free).
    pub fn observer_overhead(&self) -> f64 {
        let bare = self.bare.wall.as_secs_f64();
        if bare > 0.0 {
            self.grid.wall.as_secs_f64() / bare
        } else {
            1.0
        }
    }

    /// Legacy-engine wall time over batched-engine (`transport`) wall
    /// time, when the transport twin ran: how much faster the row runs on
    /// the calendar-queue engine than on the legacy shared-stream engine.
    /// This is the headline column of the stream migration — on a
    /// single-core host the gain is purely algorithmic (bucket lifting +
    /// batched sweeps); extra cores add on top via `par_map`.
    pub fn engine_speedup(&self) -> Option<f64> {
        self.transport.as_ref().map(|t| {
            let tw = t.wall.as_secs_f64();
            if tw > 0.0 {
                self.grid.wall.as_secs_f64() / tw
            } else {
                f64::INFINITY
            }
        })
    }

    /// Sequential-transport wall time over parallel-transport wall time
    /// within the per-node regime (1.0 on a single-core host, where the
    /// fan-out runs inline).
    pub fn transport_speedup(&self) -> Option<f64> {
        match (&self.streams, &self.transport) {
            (Some(s), Some(t)) => {
                let tw = t.wall.as_secs_f64();
                Some(if tw > 0.0 {
                    s.wall.as_secs_f64() / tw
                } else {
                    f64::INFINITY
                })
            }
            _ => None,
        }
    }
}

/// Largest node count for which the snapshot-capture race twin still runs
/// (at 100k the race would double the cost of the row for a claim already
/// pinned at 10k).
const SNAPSHOT_RACE_CEILING: usize = 10_000;

/// Run one workload (every engine configuration that applies) and panic if
/// any digest pair disagrees — the bench is also an equivalence test:
/// grid vs all-pairs neighbour discovery, and sequential vs parallel
/// compute on every GRP row.
pub fn run_workload(w: &Workload) -> WorkloadResult {
    let grid = run_engine(w, EngineConfig::GRID, Instrumentation::Trace);
    let bare = run_engine(w, EngineConfig::GRID, Instrumentation::Bare);
    let brute = (w.nodes <= w.payload.brute_force_ceiling())
        .then(|| run_engine(w, EngineConfig::BRUTE, Instrumentation::Trace));
    if let Some(b) = &brute {
        assert_eq!(
            grid.digest,
            b.digest,
            "{}: spatial index changed the trace digest",
            w.label()
        );
    }
    let parallel = (w.payload == Payload::Grp)
        .then(|| run_engine(w, EngineConfig::PARALLEL, Instrumentation::Trace));
    if let Some(p) = &parallel {
        assert_eq!(
            grid.digest,
            p.digest,
            "{}: parallel compute changed the trace digest",
            w.label()
        );
        // staggered batches stay below the inline floor, so additionally
        // drive a lockstep twin that reaches the par_map branch itself
        if w.nodes <= 1_000 {
            assert_lockstep_parallel_digests_match(w);
        }
    }
    // the transport twin: the same row on the per-node-stream calendar
    // engine, sequentially and with the send/delivery fan-out on, digests
    // asserted identical within the pair. Discovery rows are skipped —
    // they carry no traffic, so the twin would measure nothing.
    let (streams, transport) = if w.payload == Payload::Discovery {
        (None, None)
    } else {
        let s = run_engine(w, EngineConfig::STREAMS, Instrumentation::Trace);
        let t = run_engine(w, EngineConfig::TRANSPORT, Instrumentation::Trace);
        assert_eq!(
            s.digest,
            t.digest,
            "{}: parallel transport changed the trace digest",
            w.label()
        );
        (Some(s), Some(t))
    };
    let protocol = (w.payload == Payload::Grp).then(|| run_protocol_probe(w));
    let snapshot = (w.payload == Payload::Grp && w.nodes <= SNAPSHOT_RACE_CEILING)
        .then(|| run_snapshot_race(w));
    let robustness =
        (w.payload == Payload::Grp && w.nodes <= ROBUSTNESS_CEILING).then(|| run_robustness(w));
    WorkloadResult {
        workload: *w,
        grid,
        brute,
        bare,
        parallel,
        streams,
        transport,
        protocol,
        snapshot,
        robustness,
    }
}

/// `(year, month, day)` of a unix timestamp (UTC), via the classic
/// days-to-civil conversion — no calendar dependency needed offline.
pub fn civil_date(unix_secs: u64) -> (i64, u32, u32) {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

fn engine_json(run: &EngineRun) -> Json {
    Json::object()
        .with("wall_ms", run.wall.as_secs_f64() * 1_000.0)
        .with("events", run.events as i64)
        .with("events_per_sec", run.events_per_sec())
        .with("broadcasts", run.broadcasts as i64)
        .with("delivered", run.delivered as i64)
        .with("digest", run.digest.as_str())
}

fn robustness_json(run: &RobustnessRun) -> Json {
    Json::object()
        .with("wall_ms", run.wall.as_secs_f64() * 1_000.0)
        .with("availability", run.availability)
        .with(
            "mean_mttr_rounds",
            run.mean_mttr_rounds.map(Json::Float).unwrap_or(Json::Null),
        )
        .with(
            "max_mttr_rounds",
            run.max_mttr_rounds
                .map(|m| Json::Int(m as i64))
                .unwrap_or(Json::Null),
        )
        .with("unrecovered", run.unrecovered as i64)
        .with("faults", run.faults as i64)
}

fn snapshot_json(race: &SnapshotRace) -> Json {
    Json::object()
        .with(
            "streaming_capture_ms",
            race.streaming.as_secs_f64() * 1_000.0,
        )
        .with("clone_capture_ms", race.clone.as_secs_f64() * 1_000.0)
        .with("speedup", race.speedup())
}

/// The `BENCH_<date>.json` document for a completed matrix.
pub fn report_json(results: &[WorkloadResult], quick: bool, unix_secs: u64) -> Json {
    let (y, m, d) = civil_date(unix_secs);
    let peak_nodes = results.iter().map(|r| r.workload.nodes).max().unwrap_or(0);
    let workloads: Vec<Json> = results
        .iter()
        .map(|r| {
            let mut obj = Json::object()
                .with("payload", r.workload.payload.name())
                .with("mobility", r.workload.mobility.name())
                .with("channel", r.workload.channel.name())
                .with("nodes", r.workload.nodes as i64)
                .with("rounds", r.workload.rounds as i64)
                .with("seed", r.workload.seed as i64)
                .with("radio_range", RADIO_RANGE)
                .with("arena_side", arena_side(r.workload.nodes))
                .with("grid", engine_json(&r.grid));
            obj = match &r.brute {
                Some(b) => obj.with("brute", engine_json(b)),
                None => obj.with("brute", Json::Null),
            };
            obj = obj
                .with(
                    "bare",
                    Json::object().with("wall_ms", r.bare.wall.as_secs_f64() * 1_000.0),
                )
                .with("observer_overhead", r.observer_overhead());
            obj = match &r.parallel {
                Some(p) => obj.with("parallel", engine_json(p)),
                None => obj.with("parallel", Json::Null),
            };
            obj = match &r.streams {
                Some(s) => obj.with("streams", engine_json(s)),
                None => obj.with("streams", Json::Null),
            };
            obj = match &r.transport {
                Some(t) => obj.with("transport", engine_json(t)),
                None => obj.with("transport", Json::Null),
            };
            obj = obj
                .with(
                    "engine_speedup",
                    r.engine_speedup().map(Json::Float).unwrap_or(Json::Null),
                )
                .with(
                    "transport_speedup",
                    r.transport_speedup().map(Json::Float).unwrap_or(Json::Null),
                );
            obj = match &r.protocol {
                Some(d) => obj.with("protocol_ms", d.as_secs_f64() * 1_000.0),
                None => obj.with("protocol_ms", Json::Null),
            };
            obj = match &r.snapshot {
                Some(race) => obj.with("snapshot", snapshot_json(race)),
                None => obj.with("snapshot", Json::Null),
            };
            obj = match &r.robustness {
                Some(run) => obj.with("robustness", robustness_json(run)),
                None => obj.with("robustness", Json::Null),
            };
            obj.with(
                "speedup",
                r.speedup().map(Json::Float).unwrap_or(Json::Null),
            )
        })
        .collect();
    Json::object()
        // schema 5 added the `robustness` twin (availability / MTTR)
        .with("schema", 5i64)
        .with("date", format!("{y:04}-{m:02}-{d:02}"))
        .with("unix_time", unix_secs as i64)
        .with("quick", quick)
        .with("radio_range", RADIO_RANGE)
        .with("target_degree", TARGET_DEGREE)
        .with("peak_nodes", peak_nodes as i64)
        .with("workloads", Json::Array(workloads))
}

/// The events/sec summary table printed in the CI job log.
pub fn summary_table(results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<12} {:<10} {:>7} {:>7} {:>12} {:>14} {:>9} {:>8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7} {:>8}\n",
        "payload",
        "mobility",
        "channel",
        "nodes",
        "rounds",
        "grid ms",
        "events/sec",
        "speedup",
        "obs ovh",
        "par ms",
        "engine spd",
        "tx spd",
        "proto ms",
        "snap spd",
        "avail",
        "mttr"
    ));
    for r in results {
        let speedup = r
            .speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into());
        let snap = r
            .snapshot
            .map(|s| format!("{:.2}x", s.speedup()))
            .unwrap_or_else(|| "-".into());
        let par = r
            .parallel
            .as_ref()
            .map(|p| format!("{:.1}", p.wall.as_secs_f64() * 1_000.0))
            .unwrap_or_else(|| "-".into());
        let engine = r
            .engine_speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into());
        let tx = r
            .transport_speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into());
        let proto = r
            .protocol
            .map(|d| format!("{:.1}", d.as_secs_f64() * 1_000.0))
            .unwrap_or_else(|| "-".into());
        let avail = r
            .robustness
            .map(|rb| format!("{:.3}", rb.availability))
            .unwrap_or_else(|| "-".into());
        let mttr = r
            .robustness
            .and_then(|rb| rb.mean_mttr_rounds)
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<8} {:<12} {:<10} {:>7} {:>7} {:>12.1} {:>14.0} {:>9} {:>8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7} {:>8}\n",
            r.workload.payload.name(),
            r.workload.mobility.name(),
            r.workload.channel.name(),
            r.workload.nodes,
            r.workload.rounds,
            r.grid.wall.as_secs_f64() * 1_000.0,
            r.grid.events_per_sec(),
            speedup,
            format!("{:.2}x", r.observer_overhead()),
            par,
            engine,
            tx,
            proto,
            snap,
            avail,
            mttr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_matches_known_anchors() {
        assert_eq!(civil_date(0), (1970, 1, 1));
        assert_eq!(civil_date(951_782_400), (2000, 2, 29)); // leap day
        assert_eq!(civil_date(1_753_920_000), (2025, 7, 31));
    }

    #[test]
    fn grid_and_brute_agree_on_a_small_workload() {
        let w = Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::RandomWalk,
            channel: ChannelKind::Bernoulli,
            nodes: 60,
            rounds: 2,
            seed: 3,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("small workloads run the twin");
        assert_eq!(result.grid.digest, brute.digest);
        assert!(result.grid.events > 0);
    }

    #[test]
    fn grp_payload_digests_agree_too() {
        let w = Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::Highway,
            channel: ChannelKind::Bernoulli,
            nodes: 40,
            rounds: 2,
            seed: 5,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("grp twin runs at small sizes");
        assert_eq!(result.grid.digest, brute.digest);
    }

    #[test]
    fn matrix_shapes() {
        assert_eq!(
            workload_matrix(false).len(),
            35,
            "27 grid rows + 6 contention twins + the 100k conurbation row \
             + the 1M megacity profile row"
        );
        assert_eq!(workload_matrix(true).len(), 18, "15 rows + 3 twins");
        assert!(workload_matrix(false).iter().any(|w| w.nodes == 100_000));
        assert!(
            workload_matrix(false)
                .iter()
                .any(|w| w.nodes == 1_000_000 && w.payload == Payload::Beacon && w.rounds == 1),
            "the 1M profile row must stay in the full matrix"
        );
        assert!(workload_matrix(true).iter().all(|w| w.nodes <= 1_000));
        // every contention twin shadows a Bernoulli sibling with identical
        // coordinates, and only traffic-carrying highway rows are twinned
        for quick in [false, true] {
            let matrix = workload_matrix(quick);
            let twins: Vec<&Workload> = matrix
                .iter()
                .filter(|w| w.channel == ChannelKind::Contention)
                .collect();
            assert!(!twins.is_empty());
            for t in twins {
                assert_eq!(t.mobility, MobilityKind::Highway);
                assert_ne!(t.payload, Payload::Discovery);
                assert!(matrix.iter().any(|w| {
                    w.channel == ChannelKind::Bernoulli
                        && w.payload == t.payload
                        && w.mobility == t.mobility
                        && w.nodes == t.nodes
                        && w.rounds == t.rounds
                }));
            }
        }
    }

    #[test]
    fn contention_twin_is_deterministic_and_digest_distinct() {
        let bernoulli = Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::Highway,
            channel: ChannelKind::Bernoulli,
            nodes: 60,
            rounds: 2,
            seed: 3,
        };
        let contention = Workload {
            channel: ChannelKind::Contention,
            ..bernoulli
        };
        // same workload, both channels: the twin rows must measure a real
        // behavioural difference, reproducibly
        let a = run_engine(&contention, EngineConfig::GRID, Instrumentation::Trace);
        let b = run_engine(&contention, EngineConfig::GRID, Instrumentation::Trace);
        assert_eq!(a.digest, b.digest, "contention rows must be deterministic");
        let base = run_engine(&bernoulli, EngineConfig::GRID, Instrumentation::Trace);
        assert_ne!(
            base.digest, a.digest,
            "the contention channel must actually change delivery behaviour"
        );
        assert!(
            a.delivered < base.delivered,
            "contention under highway density loses more frames \
             ({} delivered vs {})",
            a.delivered,
            base.delivered
        );
    }

    #[test]
    fn discovery_payload_runs_without_nodes() {
        let w = Workload {
            payload: Payload::Discovery,
            mobility: MobilityKind::RandomWalk,
            channel: ChannelKind::Bernoulli,
            nodes: 80,
            rounds: 3,
            seed: 11,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("twin runs at small sizes");
        assert_eq!(result.grid.digest, brute.digest);
        assert_eq!(result.grid.broadcasts, 0, "discovery rows carry no traffic");
        assert!(
            result.streams.is_none() && result.transport.is_none(),
            "discovery rows skip the transport twin"
        );
    }

    /// The transport twin's two invariants: `parallel_transport` never
    /// moves a digest within the per-node regime, and the per-node regime
    /// really is a different randomness stream from the legacy engine
    /// (otherwise the twin would silently measure the same run twice).
    /// Contention + highway is deliberately the nastiest combination —
    /// shared channel window state plus per-sender stream handoffs.
    #[test]
    fn transport_twin_matches_streams_and_differs_from_legacy() {
        let w = Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::Highway,
            channel: ChannelKind::Contention,
            nodes: 60,
            rounds: 2,
            seed: 3,
        };
        let result = run_workload(&w);
        let streams = result.streams.as_ref().expect("traffic rows run the twin");
        let transport = result
            .transport
            .as_ref()
            .expect("traffic rows run the twin");
        assert_eq!(streams.digest, transport.digest);
        assert_ne!(
            streams.digest, result.grid.digest,
            "per-node streams are a re-pinned randomness regime, not the legacy stream"
        );
        assert!(result.transport_speedup().is_some());
        assert!(result.engine_speedup().is_some());
    }

    #[test]
    fn report_is_valid_json_with_expected_keys() {
        let w = Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::Stationary,
            channel: ChannelKind::Bernoulli,
            nodes: 30,
            rounds: 1,
            seed: 1,
        };
        let results = vec![run_workload(&w)];
        let doc = report_json(&results, true, 1_753_920_000).pretty();
        for key in [
            "\"schema\"",
            "\"date\"",
            "\"workloads\"",
            "\"speedup\"",
            "\"digest\"",
            "\"bare\"",
            "\"observer_overhead\"",
            "\"snapshot\"",
            "\"streams\"",
            "\"transport\"",
            "\"engine_speedup\"",
            "\"transport_speedup\"",
            "\"robustness\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(doc.contains("\"schema\": 5"));
        assert!(doc.contains("2025-07-31"));
    }

    /// The robustness twin injects its whole schedule and reports sane
    /// recovery metrics: availability is a probability, nothing recovers
    /// in negative time, and the twin only runs on GRP rows.
    #[test]
    fn robustness_twin_reports_recovery_metrics() {
        let w = Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::Stationary,
            channel: ChannelKind::Bernoulli,
            nodes: 30,
            rounds: 40,
            seed: 7,
        };
        let run = run_robustness(&w);
        assert_eq!(run.faults, 6, "the fixed schedule injects 6 faults");
        // a random spatial arena may never satisfy whole-system
        // legitimacy inside the horizon, so 0.0 is a valid verdict
        assert!(
            (0.0..=1.0).contains(&run.availability),
            "availability {} out of range",
            run.availability
        );
        assert!(run.unrecovered <= run.faults);
        if let (Some(mean), Some(max)) = (run.mean_mttr_rounds, run.max_mttr_rounds) {
            assert!(mean <= max as f64, "mean MTTR above max MTTR");
        }

        let beacon = Workload {
            payload: Payload::Beacon,
            ..w
        };
        assert!(
            run_workload(&beacon).robustness.is_none(),
            "non-GRP rows carry no robustness twin"
        );
    }

    /// The redesign's headline claim, pinned at unit-test scale: recording
    /// the configuration history through the copy-on-write recorder is
    /// cheaper than the historical clone-per-round capture, and both record
    /// identical histories (asserted inside the race). A stationary
    /// workload with enough rounds to converge makes the gap structural —
    /// once the views stop changing, streaming capture is pure compares
    /// and pointer clones while the clone path keeps deep-copying the
    /// graph and every view. The verdict is the *paired per-round* win
    /// rate: both hooks run back-to-back within each round of one
    /// simulation (in alternating order), so an external load spike — this
    /// box shares cores with noisy neighbours — costs isolated samples,
    /// never the whole comparison. (The full-matrix `bench-runner` pins
    /// the same claim at 10k nodes, serially, in release.)
    #[test]
    fn streaming_capture_beats_clone_per_round() {
        let w = Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::Stationary,
            channel: ChannelKind::Bernoulli,
            nodes: 200,
            rounds: 30,
            seed: 7,
        };
        let races: Vec<SnapshotRace> = (0..3).map(|_| run_snapshot_race(&w)).collect();
        let won: u32 = races.iter().map(|r| r.rounds_streaming_won).sum();
        let rounds: u32 = races.iter().map(|r| r.rounds).sum();
        assert!(
            won * 2 > rounds,
            "streaming won only {won}/{rounds} paired rounds \
             (totals: {:?})",
            races
                .iter()
                .map(|r| (r.streaming, r.clone))
                .collect::<Vec<_>>()
        );
    }
}

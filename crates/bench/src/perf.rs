//! The `bench-runner` workload matrix: wall-clock benchmarks of the full
//! simulation engine at scale, emitting the repo's machine-readable
//! `BENCH_<date>.json` perf baseline (schema documented in
//! `docs/PERFORMANCE.md`).
//!
//! Each workload runs the identical simulation twice — once with the
//! spatial-grid index and once with the historical all-pairs neighbour scan
//! — and cross-checks that both produce the same trace digest, so every
//! bench run doubles as an engine-equivalence test. The largest sizes skip
//! the brute-force twin (it is exactly the configuration the index was
//! built to escape).

use grp_core::{GrpConfig, GrpNode};
use netsim::mobility::{Highway, RandomWalk, Stationary};
use netsim::protocol::Beacon;
use netsim::radio::UnitDisk;
use netsim::{CanonicalHasher, MobilityModel, Protocol, SimConfig, Simulator, TopologyMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use scenarios::json::Json;
use std::time::{Duration, Instant};

/// Radio range shared by all bench workloads (metres).
pub const RADIO_RANGE: f64 = 45.0;
/// Target mean node degree; the arena is scaled so density stays constant
/// as `n` grows.
pub const TARGET_DEGREE: f64 = 8.0;

/// Mobility family of a bench workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityKind {
    Stationary,
    RandomWalk,
    Highway,
}

impl MobilityKind {
    pub fn name(self) -> &'static str {
        match self {
            MobilityKind::Stationary => "stationary",
            MobilityKind::RandomWalk => "random_walk",
            MobilityKind::Highway => "highway",
        }
    }
}

/// What runs on the simulated nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    /// No protocol traffic at all: the run is pure mobility advancement
    /// plus neighbour discovery, isolating exactly the path the spatial
    /// index replaced. These rows carry the headline speedup claim.
    Discovery,
    /// O(1) handlers: engine throughput with traffic (event queue, radio,
    /// spatial index, mobility).
    Beacon,
    /// The full group-service protocol: end-to-end system throughput.
    Grp,
}

impl Payload {
    pub fn name(self) -> &'static str {
        match self {
            Payload::Discovery => "discovery",
            Payload::Beacon => "beacon",
            Payload::Grp => "grp",
        }
    }

    /// Largest node count for which the all-pairs twin still runs. The GRP
    /// rows keep the twin only at the smallest size (protocol work dwarfs
    /// the neighbour scan there, so the twin serves as an equivalence check
    /// rather than a meaningful speedup measurement).
    pub fn brute_force_ceiling(self) -> usize {
        match self {
            Payload::Discovery => 1_000,
            Payload::Beacon => 1_000,
            Payload::Grp => 100,
        }
    }
}

/// One cell of the workload matrix.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    pub payload: Payload,
    pub mobility: MobilityKind,
    pub nodes: usize,
    pub rounds: u64,
    pub seed: u64,
}

impl Workload {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.payload.name(),
            self.mobility.name(),
            self.nodes
        )
    }
}

/// The fixed matrix: payload ∈ {beacon, grp} × n ∈ {100, 1k, 10k} ×
/// {stationary, random-walk, highway}. `--quick` drops the 10k rows (and
/// the 1k GRP rows) and halves the rounds so the CI job stays in seconds.
pub fn workload_matrix(quick: bool) -> Vec<Workload> {
    let discovery_sizes: &[(usize, u64)] = if quick {
        &[(100, 10), (1_000, 6)]
    } else {
        &[(100, 30), (1_000, 15), (10_000, 4)]
    };
    let beacon_sizes: &[(usize, u64)] = if quick {
        &[(100, 6), (1_000, 4)]
    } else {
        &[(100, 12), (1_000, 8), (10_000, 3)]
    };
    let grp_sizes: &[(usize, u64)] = if quick {
        &[(100, 4)]
    } else {
        &[(100, 8), (1_000, 4), (10_000, 2)]
    };
    let mut matrix = Vec::new();
    for (payload, sizes) in [
        (Payload::Discovery, discovery_sizes),
        (Payload::Beacon, beacon_sizes),
        (Payload::Grp, grp_sizes),
    ] {
        for &mobility in &[
            MobilityKind::Stationary,
            MobilityKind::RandomWalk,
            MobilityKind::Highway,
        ] {
            for &(nodes, rounds) in sizes {
                matrix.push(Workload {
                    payload,
                    mobility,
                    nodes,
                    rounds,
                    seed: 7,
                });
            }
        }
    }
    matrix
}

/// Arena side for `n` nodes at the target density.
pub fn arena_side(n: usize) -> f64 {
    (n as f64 * std::f64::consts::PI * RADIO_RANGE * RADIO_RANGE / TARGET_DEGREE).sqrt()
}

fn build_mobility(w: &Workload) -> Box<dyn MobilityModel> {
    let mut placement = ChaCha8Rng::seed_from_u64(w.seed ^ 0x5ce0_a71e_5eed);
    let side = arena_side(w.nodes);
    match w.mobility {
        MobilityKind::Stationary => {
            Box::new(Stationary::uniform(w.nodes, side, side, &mut placement))
        }
        MobilityKind::RandomWalk => {
            Box::new(RandomWalk::new(w.nodes, side, side, 0.02, &mut placement))
        }
        MobilityKind::Highway => Box::new(Highway::new(
            w.nodes,
            4,
            w.nodes as f64 * 5.0,
            15.0,
            (0.005, 0.015),
            &mut placement,
        )),
    }
}

fn build_simulator<P: Protocol, F: Fn(dyngraph::NodeId) -> P>(
    w: &Workload,
    spatial_index: bool,
    make_node: F,
) -> Simulator<P> {
    let config = SimConfig {
        seed: w.seed,
        // VANET-rate mobility: the topology refreshes ten times per compute
        // period, which is precisely the regime the spatial index targets.
        mobility_period: 100,
        spatial_index,
        ..Default::default()
    };
    let mut sim = Simulator::new(
        config,
        TopologyMode::Spatial {
            radio: Box::new(UnitDisk::new(RADIO_RANGE)),
            mobility: build_mobility(w),
        },
    );
    sim.add_nodes((0..w.nodes as u64).map(|id| make_node(dyngraph::NodeId(id))));
    sim
}

/// One engine execution of a workload.
#[derive(Clone, Debug)]
pub struct EngineRun {
    pub wall: Duration,
    pub events: u64,
    pub broadcasts: u64,
    pub delivered: u64,
    pub digest: String,
}

impl EngineRun {
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

fn drive<P: Protocol>(w: &Workload, mut sim: Simulator<P>) -> EngineRun {
    let start = Instant::now();
    for _ in 0..w.rounds {
        sim.run_rounds(1);
        sim.snapshot();
    }
    let wall = start.elapsed();
    let mut hasher = CanonicalHasher::new();
    hasher.feed_str(&w.label());
    hasher.feed_u64(w.seed);
    sim.trace().feed_digest(&mut hasher);
    EngineRun {
        wall,
        events: sim.events_processed(),
        broadcasts: sim.stats().broadcasts,
        delivered: sim.stats().delivered,
        digest: hasher.finalize().to_hex(),
    }
}

/// Execute one workload on one engine configuration.
pub fn run_engine(w: &Workload, spatial_index: bool) -> EngineRun {
    match w.payload {
        Payload::Discovery => {
            // no protocol instances: the event stream is mobility ticks
            // only, so the run isolates neighbour-discovery throughput
            let config = SimConfig {
                seed: w.seed,
                mobility_period: 100,
                spatial_index,
                ..Default::default()
            };
            let sim: Simulator<Beacon> = Simulator::new(
                config,
                TopologyMode::Spatial {
                    radio: Box::new(UnitDisk::new(RADIO_RANGE)),
                    mobility: build_mobility(w),
                },
            );
            drive(w, sim)
        }
        Payload::Beacon => drive(w, build_simulator(w, spatial_index, Beacon::new)),
        Payload::Grp => drive(
            w,
            build_simulator(w, spatial_index, |id| GrpNode::new(id, GrpConfig::new(3))),
        ),
    }
}

/// Grid run plus (for sizes below the ceiling) the all-pairs twin.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    pub workload: Workload,
    pub grid: EngineRun,
    pub brute: Option<EngineRun>,
}

impl WorkloadResult {
    /// Brute wall time over grid wall time, when the twin ran.
    pub fn speedup(&self) -> Option<f64> {
        self.brute.as_ref().map(|b| {
            let g = self.grid.wall.as_secs_f64();
            if g > 0.0 {
                b.wall.as_secs_f64() / g
            } else {
                f64::INFINITY
            }
        })
    }
}

/// Run one workload (both engine configurations where applicable) and
/// panic if their digests disagree — the bench is also an equivalence test.
pub fn run_workload(w: &Workload) -> WorkloadResult {
    let grid = run_engine(w, true);
    let brute = (w.nodes <= w.payload.brute_force_ceiling()).then(|| run_engine(w, false));
    if let Some(b) = &brute {
        assert_eq!(
            grid.digest,
            b.digest,
            "{}: spatial index changed the trace digest",
            w.label()
        );
    }
    WorkloadResult {
        workload: *w,
        grid,
        brute,
    }
}

/// `(year, month, day)` of a unix timestamp (UTC), via the classic
/// days-to-civil conversion — no calendar dependency needed offline.
pub fn civil_date(unix_secs: u64) -> (i64, u32, u32) {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

fn engine_json(run: &EngineRun) -> Json {
    Json::object()
        .with("wall_ms", run.wall.as_secs_f64() * 1_000.0)
        .with("events", run.events as i64)
        .with("events_per_sec", run.events_per_sec())
        .with("broadcasts", run.broadcasts as i64)
        .with("delivered", run.delivered as i64)
        .with("digest", run.digest.as_str())
}

/// The `BENCH_<date>.json` document for a completed matrix.
pub fn report_json(results: &[WorkloadResult], quick: bool, unix_secs: u64) -> Json {
    let (y, m, d) = civil_date(unix_secs);
    let peak_nodes = results.iter().map(|r| r.workload.nodes).max().unwrap_or(0);
    let workloads: Vec<Json> = results
        .iter()
        .map(|r| {
            let mut obj = Json::object()
                .with("payload", r.workload.payload.name())
                .with("mobility", r.workload.mobility.name())
                .with("nodes", r.workload.nodes as i64)
                .with("rounds", r.workload.rounds as i64)
                .with("seed", r.workload.seed as i64)
                .with("radio_range", RADIO_RANGE)
                .with("arena_side", arena_side(r.workload.nodes))
                .with("grid", engine_json(&r.grid));
            obj = match &r.brute {
                Some(b) => obj.with("brute", engine_json(b)),
                None => obj.with("brute", Json::Null),
            };
            obj.with(
                "speedup",
                r.speedup().map(Json::Float).unwrap_or(Json::Null),
            )
        })
        .collect();
    Json::object()
        .with("schema", 1i64)
        .with("date", format!("{y:04}-{m:02}-{d:02}"))
        .with("unix_time", unix_secs as i64)
        .with("quick", quick)
        .with("radio_range", RADIO_RANGE)
        .with("target_degree", TARGET_DEGREE)
        .with("peak_nodes", peak_nodes as i64)
        .with("workloads", Json::Array(workloads))
}

/// The events/sec summary table printed in the CI job log.
pub fn summary_table(results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<12} {:>7} {:>7} {:>12} {:>14} {:>9}\n",
        "payload", "mobility", "nodes", "rounds", "grid ms", "events/sec", "speedup"
    ));
    for r in results {
        let speedup = r
            .speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<8} {:<12} {:>7} {:>7} {:>12.1} {:>14.0} {:>9}\n",
            r.workload.payload.name(),
            r.workload.mobility.name(),
            r.workload.nodes,
            r.workload.rounds,
            r.grid.wall.as_secs_f64() * 1_000.0,
            r.grid.events_per_sec(),
            speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_matches_known_anchors() {
        assert_eq!(civil_date(0), (1970, 1, 1));
        assert_eq!(civil_date(951_782_400), (2000, 2, 29)); // leap day
        assert_eq!(civil_date(1_753_920_000), (2025, 7, 31));
    }

    #[test]
    fn grid_and_brute_agree_on_a_small_workload() {
        let w = Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::RandomWalk,
            nodes: 60,
            rounds: 2,
            seed: 3,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("small workloads run the twin");
        assert_eq!(result.grid.digest, brute.digest);
        assert!(result.grid.events > 0);
    }

    #[test]
    fn grp_payload_digests_agree_too() {
        let w = Workload {
            payload: Payload::Grp,
            mobility: MobilityKind::Highway,
            nodes: 40,
            rounds: 2,
            seed: 5,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("grp twin runs at small sizes");
        assert_eq!(result.grid.digest, brute.digest);
    }

    #[test]
    fn matrix_shapes() {
        assert_eq!(workload_matrix(false).len(), 27);
        assert_eq!(workload_matrix(true).len(), 15);
        assert!(workload_matrix(true).iter().all(|w| w.nodes <= 1_000));
    }

    #[test]
    fn discovery_payload_runs_without_nodes() {
        let w = Workload {
            payload: Payload::Discovery,
            mobility: MobilityKind::RandomWalk,
            nodes: 80,
            rounds: 3,
            seed: 11,
        };
        let result = run_workload(&w);
        let brute = result.brute.expect("twin runs at small sizes");
        assert_eq!(result.grid.digest, brute.digest);
        assert_eq!(result.grid.broadcasts, 0, "discovery rows carry no traffic");
    }

    #[test]
    fn report_is_valid_json_with_expected_keys() {
        let w = Workload {
            payload: Payload::Beacon,
            mobility: MobilityKind::Stationary,
            nodes: 30,
            rounds: 1,
            seed: 1,
        };
        let results = vec![run_workload(&w)];
        let doc = report_json(&results, true, 1_753_920_000).pretty();
        for key in [
            "\"schema\"",
            "\"date\"",
            "\"workloads\"",
            "\"speedup\"",
            "\"digest\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(doc.contains("2025-07-31"));
    }
}

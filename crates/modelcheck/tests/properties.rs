//! Property tests for the explorer itself: whatever instance it is pointed
//! at, exploration must be (1) deterministic — the verdict is a function of
//! the configuration, never of iteration order or hashing accidents — and
//! (2) honest — every trace it emits replays, step by enabled step, to the
//! exact state it claims to end in. Both properties are what lets a
//! `[golden]` digest pin an exhaustive verdict and a checked-in trace file
//! stay meaningful across refactors.

use dyngraph::generators::{complete, path, star};
use grp_core::GrpConfig;
use modelcheck::{
    check_corruptions, explore, fresh_net, verify_trace, ExploreConfig, FaultBudget, GrpChecker,
    McNet, Outcome, Report, Violation,
};
use proptest::prelude::*;

/// The small-instance pool the properties sample from. Index 0..5.
fn instance(which: usize, dmax: usize) -> McNet<grp_core::GrpNode> {
    let config = GrpConfig::new(dmax);
    let topology = match which {
        0 => path(2),
        1 => path(3),
        2 => path(4),
        3 => complete(3),
        4 => star(4),
        _ => complete(4),
    };
    fresh_net(topology, &config)
}

fn config_for(seed: u64, depth: usize, max_states: usize) -> ExploreConfig {
    ExploreConfig {
        depth,
        max_states,
        budget: FaultBudget::default(),
        walks: 2,
        walk_depth: 32,
        seed,
    }
}

/// The first counterexample (or convergence witness) a report carries, as
/// comparable data: the choice list plus the end hash.
fn emitted_trace(report: &Report) -> Option<(Vec<modelcheck::Choice>, String)> {
    let trace = match &report.outcome {
        Outcome::Violation(Violation::Invariant { trace, .. })
        | Outcome::Violation(Violation::Stuck { trace })
        | Outcome::Violation(Violation::Cycle { trace, .. }) => Some(trace),
        _ => report.witness.as_ref(),
    };
    trace.map(|t| (t.choices.clone(), t.end_hash.to_hex()))
}

fn outcome_tag(report: &Report) -> &'static str {
    match &report.outcome {
        Outcome::Converged => "converged",
        Outcome::Violation(Violation::Invariant { .. }) => "invariant",
        Outcome::Violation(Violation::Stuck { .. }) => "stuck",
        Outcome::Violation(Violation::Cycle { .. }) => "cycle",
        Outcome::BoundsExceeded { .. } => "bounds",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same instance + same configuration ⇒ byte-for-byte the same verdict:
    /// visited count, goal count, depth reached, outcome, and the first
    /// emitted counterexample/witness trace.
    #[test]
    fn exploration_is_deterministic(
        which in 0usize..5,
        dmax in 1usize..3,
        seed in 0u64..1000,
    ) {
        let net = instance(which, dmax);
        let checker = GrpChecker::new(dmax);
        let config = config_for(seed, 16, 1200);
        let a = explore(&net, &checker, &config);
        let b = explore(&net, &checker, &config);
        prop_assert_eq!(a.visited, b.visited);
        prop_assert_eq!(a.goal_states, b.goal_states);
        prop_assert_eq!(a.max_depth, b.max_depth);
        prop_assert_eq!(outcome_tag(&a), outcome_tag(&b));
        prop_assert_eq!(emitted_trace(&a), emitted_trace(&b));
    }

    /// Every trace the explorer emits — convergence witness or violation
    /// counterexample — replays from the initial configuration through
    /// enabled transitions only, and lands on exactly the claimed end hash.
    #[test]
    fn emitted_traces_replay_to_their_end_hash(
        which in 0usize..5,
        dmax in 1usize..3,
        seed in 0u64..1000,
    ) {
        let net = instance(which, dmax);
        let checker = GrpChecker::new(dmax);
        let config = config_for(seed, 16, 1200);
        let report = explore(&net, &checker, &config);
        if let Some(trace) = match &report.outcome {
            Outcome::Violation(Violation::Invariant { trace, .. })
            | Outcome::Violation(Violation::Stuck { trace })
            | Outcome::Violation(Violation::Cycle { trace, .. }) => Some(trace),
            _ => report.witness.as_ref(),
        } {
            let end = verify_trace(&net, trace, config.budget);
            prop_assert!(end.is_ok(), "trace must replay: {}", end.unwrap_err());
        }
    }

    /// The corruption catalogue driver inherits determinism: the case
    /// order, every per-case verdict, and every per-case trace are a pure
    /// function of the base configuration and the explore config.
    #[test]
    fn corruption_sweeps_are_deterministic(
        dmax in 1usize..3,
        seed in 0u64..100,
    ) {
        let config = GrpConfig::new(dmax);
        let base = match modelcheck::legitimate_start(path(3), &config, 64) {
            Ok(net) => net,
            Err(_) => return Ok(()), // no stable sync start at this dmax
        };
        let checker = GrpChecker::new(dmax);
        let explore_config = config_for(seed, 16, 1200);
        let a = check_corruptions(&base, &checker, &explore_config);
        let b = check_corruptions(&base, &checker, &explore_config);
        prop_assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(&b) {
            prop_assert_eq!(ca.node, cb.node);
            prop_assert_eq!(&ca.variant, &cb.variant);
            prop_assert_eq!(ca.report.visited, cb.report.visited);
            prop_assert_eq!(emitted_trace(&ca.report), emitted_trace(&cb.report));
        }
    }
}

//! Regression pin for the synchronous-compute view oscillation.
//!
//! `grp-core` documents (at `GrpNode::compute`) that a *fully synchronous*
//! schedule — deliver every in-flight message, then let every node compute,
//! forever — can trap a boundary node between two groups that never admit
//! it. This test checks in the minimal concrete counterexample as a trace
//! file and verifies every documented property of it mechanically:
//!
//! * the trace replays from freshly-booted nodes to the cycle entry;
//! * the cycle is genuine — `period_rounds` more synchronous rounds return
//!   to the same configuration;
//! * every configuration in the cycle is *illegitimate*, and specifically
//!   it is maximality (ΠM) that fails — agreement and safety hold, so two
//!   mergeable groups sit next to each other forever;
//! * the oscillation is a property of the schedule, not the protocol: a
//!   staggered (still lockstep-fair) schedule that computes one node per
//!   sweep escapes to a legitimate configuration quickly.
//!
//! The protocol therefore self-stabilizes under the scheduler the explorer
//! enumerates, but the fully synchronous schedule is an accepted fairness
//! assumption violation for maximality. Regenerate the artifact with
//! `cargo run -p modelcheck --example pin_oscillation`.

use dyngraph::generators::path;
use grp_core::GrpConfig;
use modelcheck::{
    find_synchronous_lasso, fresh_net, parse_trace, replay, snapshot_of, synchronous_round,
    Checker, Choice, GrpChecker, McNet,
};

const PINNED: &str = include_str!("data/path5_dmax2_sync.trace");
const DMAX: usize = 2;

fn start() -> McNet<grp_core::GrpNode> {
    fresh_net(path(5), &GrpConfig::new(DMAX))
}

/// Extract a `# key value` header line from the pinned artifact.
fn header(key: &str) -> String {
    PINNED
        .lines()
        .filter_map(|l| l.strip_prefix('#'))
        .filter_map(|l| l.trim().strip_prefix(key))
        .map(|rest| rest.trim().to_string())
        .next()
        .unwrap_or_else(|| panic!("header `{key}` missing from pinned trace"))
}

#[test]
fn pinned_trace_replays_to_the_lasso_entry() {
    let trace = parse_trace(PINNED).expect("pinned trace parses");
    let end = replay(&start(), &trace, Default::default()).expect("pinned trace replays");
    assert!(
        end.channels.is_empty(),
        "the pinned trace ends in a drained configuration"
    );
    assert_eq!(end.state_hash().to_hex(), header("entry_hash"));

    // The checked-in artifact is exactly what the lasso finder reports
    // today: same stem, same period, same entry configuration.
    let lasso = find_synchronous_lasso(&start(), 64).expect("schedule is periodic");
    assert_eq!(lasso.stem_rounds.to_string(), header("stem_rounds"));
    assert_eq!(lasso.period_rounds.to_string(), header("period_rounds"));
    assert_eq!(lasso.entry_hash.to_hex(), header("entry_hash"));
    assert_eq!(lasso.trace, trace, "artifact drifted — regenerate it");
}

#[test]
fn the_cycle_is_periodic_and_violates_only_maximality() {
    let trace = parse_trace(PINNED).expect("pinned trace parses");
    let entry = replay(&start(), &trace, Default::default()).expect("replays");
    let period: usize = header("period_rounds").parse().expect("period header");
    assert!(period > 1, "a period of 1 would be a fixpoint, not a cycle");

    let checker = GrpChecker::new(DMAX);
    let mut net = entry.clone();
    for round in 0..period {
        // Every configuration along the cycle (drained for the predicate,
        // which reads settled views) is illegitimate for the same reason:
        // ΠA and ΠS hold, ΠM does not — the boundary node's group and a
        // neighbouring group could merge but never do.
        let mut drained = net.clone();
        drain(&mut drained);
        let snap = snapshot_of(&drained);
        assert!(snap.agreement(), "round {round}: agreement should hold");
        assert!(snap.safety(DMAX), "round {round}: safety should hold");
        assert!(
            !snap.maximality(DMAX),
            "round {round}: maximality should be the violated predicate"
        );
        assert!(!checker.goal(&drained), "round {round}: not legitimate");
        synchronous_round(&mut net);
    }
    drain(&mut net);
    assert!(
        net.state_hash() == entry.state_hash(),
        "{period} synchronous rounds must return to the cycle entry"
    );
}

#[test]
fn a_staggered_schedule_escapes_the_oscillation() {
    // Same protocol, same topology, starting *inside* the cycle — but with
    // staggered compute timers: every node still broadcasts each sweep,
    // while only one node (round-robin) runs its compute step. This is the
    // timing regime real deployments live in, and it escapes: the boundary
    // node gets to observe a settled neighbourhood instead of two groups
    // reshaping simultaneously, and the run reaches a legitimate
    // configuration. The oscillation is a schedule artifact, not a
    // protocol defect — which is why it is encoded here as an accepted
    // fairness assumption rather than patched in `GrpNode::compute`.
    let trace = parse_trace(PINNED).expect("pinned trace parses");
    let entry = replay(&start(), &trace, Default::default()).expect("replays");
    let mut nodes = entry.nodes.clone();
    let edges: Vec<_> = entry.topology.edges().collect();
    let ids: Vec<_> = nodes.keys().copied().collect();

    let mut legitimate_at = None;
    for sweep in 0..40 {
        let messages: std::collections::BTreeMap<_, _> = nodes
            .iter()
            .map(|(&id, node)| (id, node.build_message()))
            .collect();
        for &(a, b) in &edges {
            let to_b = messages[&a].clone();
            let to_a = messages[&b].clone();
            nodes.get_mut(&b).unwrap().receive(to_b);
            nodes.get_mut(&a).unwrap().receive(to_a);
        }
        nodes.get_mut(&ids[sweep % ids.len()]).unwrap().on_round();

        let views = nodes
            .iter()
            .map(|(&id, n)| (id, n.view().clone()))
            .collect();
        let snap = grp_core::SystemSnapshot::new(entry.topology.clone(), views);
        if snap.legitimate(DMAX) {
            legitimate_at = Some(sweep);
            break;
        }
    }
    assert!(
        legitimate_at.is_some(),
        "the staggered schedule should escape the cycle within 40 sweeps"
    );
}

/// Deliver every in-flight message (new sends included) until quiescent.
fn drain(net: &mut McNet<grp_core::GrpNode>) {
    loop {
        let pending: Vec<_> = net.channels.keys().copied().collect();
        if pending.is_empty() {
            return;
        }
        for (from, to) in pending {
            net.apply(Choice::Deliver { from, to });
        }
    }
}

//! GRP-specific glue: legitimacy as the goal predicate, deterministic
//! warm-up to a legitimate configuration, the corruption catalogue runner
//! used by the `modelcheck` scenario mode, and the synchronous-schedule
//! lasso finder that pins the documented view oscillation.

use crate::explore::{explore, Checker, ExploreConfig, Report};
use crate::state::{Choice, McNet};
use dyngraph::{Graph, NodeId};
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::{CanonicalHasher, TraceDigest};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

/// Goal predicate for GRP: the alive nodes' views form a legitimate
/// configuration — agreement (ΠA), safety (ΠS) and maximality (ΠM) all
/// hold over the full communication topology.
///
/// Legitimacy depends only on the views, and vastly more explorer states
/// exist than view configurations (states also differ in lists, message
/// sets and channels), so verdicts are memoized by a views-only digest —
/// that cache is what keeps the goal check off the exploration's critical
/// path.
pub struct GrpChecker {
    pub dmax: usize,
    verdicts: RefCell<HashMap<[u8; 32], bool>>,
}

impl GrpChecker {
    pub fn new(dmax: usize) -> Self {
        GrpChecker {
            dmax,
            verdicts: RefCell::new(HashMap::new()),
        }
    }
}

impl Checker<GrpNode> for GrpChecker {
    fn goal(&self, net: &McNet<GrpNode>) -> bool {
        let mut hasher = CanonicalHasher::new();
        hasher.begin_list("grp-views");
        for (&id, node) in &net.nodes {
            if net.is_alive(id) {
                hasher.feed_u64(id.raw());
                hasher.feed_node_set(node.view().iter().copied());
            }
        }
        hasher.end_list();
        let key = hasher.finalize().0;
        if let Some(&verdict) = self.verdicts.borrow().get(&key) {
            return verdict;
        }
        let verdict = snapshot_of(net).legitimate(self.dmax);
        self.verdicts.borrow_mut().insert(key, verdict);
        verdict
    }
}

/// The global snapshot the predicates evaluate: alive nodes' views over
/// the full topology (crashed nodes are absent, mirroring how the
/// simulator's snapshot capture treats inactive nodes).
pub fn snapshot_of(net: &McNet<GrpNode>) -> SystemSnapshot {
    let views: BTreeMap<_, _> = net
        .nodes
        .iter()
        .filter(|(&id, _)| net.is_alive(id))
        .map(|(&id, node)| (id, node.view().clone()))
        .collect();
    SystemSnapshot::new(net.topology.clone(), views)
}

/// A network of freshly-booted GRP nodes, one per topology node.
pub fn fresh_net(topology: Graph, config: &GrpConfig) -> McNet<GrpNode> {
    let nodes: Vec<GrpNode> = topology
        .node_vec()
        .into_iter()
        .map(|id| GrpNode::new(id, config.clone()))
        .collect();
    McNet::new(topology, nodes)
}

/// Append one fully synchronous round to `net`: deliver every pending
/// message (canonical channel order), then run every alive node's compute
/// step (ascending id). In this schedule each compute consumes exactly
/// the previous round's broadcasts — the regime of the simulator's
/// lockstep tests, and the regime in which the documented boundary
/// oscillation lives. Returns the choices applied.
pub fn synchronous_round(net: &mut McNet<GrpNode>) -> Vec<Choice> {
    let mut applied = Vec::new();
    loop {
        let pending: Vec<(NodeId, NodeId)> = net.channels.keys().copied().collect();
        if pending.is_empty() {
            break;
        }
        for (from, to) in pending {
            let choice = Choice::Deliver { from, to };
            net.apply(choice);
            applied.push(choice);
        }
    }
    let order: Vec<NodeId> = net
        .nodes
        .keys()
        .copied()
        .filter(|&id| net.is_alive(id))
        .collect();
    for node in order {
        let choice = Choice::Compute { node };
        net.apply(choice);
        applied.push(choice);
    }
    applied
}

/// Drive a fresh network with synchronous rounds until it is legitimate
/// and stable (two consecutive rounds hash identically), ending with all
/// channels drained so the returned configuration is quiescent. Errors if
/// `max_rounds` synchronous rounds do not reach a stable legitimate
/// configuration — the topology/`dmax` combination is then unsuitable for
/// a `start = "legitimate"` model-check.
pub fn legitimate_start(
    topology: Graph,
    config: &GrpConfig,
    max_rounds: usize,
) -> Result<McNet<GrpNode>, String> {
    let checker = GrpChecker::new(config.dmax);
    let mut net = fresh_net(topology, config);
    let mut prev_hash: Option<TraceDigest> = None;
    for _ in 0..max_rounds {
        synchronous_round(&mut net);
        // hash the drained configuration so "stable" means the whole
        // round (messages included) reproduced itself
        let mut drained = net.clone();
        drain(&mut drained);
        let hash = drained.state_hash();
        if prev_hash == Some(hash) && checker.goal(&drained) {
            return Ok(drained);
        }
        prev_hash = Some(hash);
    }
    Err(format!(
        "no stable legitimate configuration within {max_rounds} synchronous rounds"
    ))
}

fn drain(net: &mut McNet<GrpNode>) {
    drain_recording(net);
}

/// One corruption case: which node was corrupted, which catalogue variant,
/// and what the explorer concluded.
pub struct CorruptionCase {
    pub node: NodeId,
    pub variant: String,
    pub report: Report,
}

/// Run the explorer once per `(node, corruption variant)` pair from
/// [`GrpNode::enumerate_corruptions`], each time starting from `base` with
/// that single node's state replaced by the corrupted variant. `base` is
/// normally the output of [`legitimate_start`]; the catalogue order is
/// deterministic, so the sequence of reports is too.
pub fn check_corruptions(
    base: &McNet<GrpNode>,
    checker: &GrpChecker,
    config: &ExploreConfig,
) -> Vec<CorruptionCase> {
    let universe: Vec<NodeId> = base.nodes.keys().copied().collect();
    let mut cases = Vec::new();
    for &id in &universe {
        let variants = base.nodes[&id].enumerate_corruptions(&universe);
        for (variant, corrupted) in variants {
            let mut net = base.clone();
            net.nodes.insert(id, corrupted);
            let report = explore(&net, checker, config);
            cases.push(CorruptionCase {
                node: id,
                variant,
                report,
            });
        }
    }
    cases
}

/// One pair-corruption case: the unordered pair of simultaneously
/// corrupted nodes, which catalogue variant hit each, and the explorer's
/// conclusion.
pub struct PairCorruptionCase {
    pub node: NodeId,
    pub partner: NodeId,
    pub variant: String,
    pub partner_variant: String,
    pub report: Report,
}

/// Run the explorer once per unordered node pair `(a, b)` (a < b) and per
/// combination of catalogue variants from
/// [`GrpNode::enumerate_corruptions`] on each victim: both corrupted
/// states are installed *simultaneously* before exploration starts, the
/// adversarial analogue of two independent transient faults landing in
/// the same instant. The catalogue and pair orders are deterministic, so
/// the sequence of reports is too. Quadratic in nodes times catalogue
/// size squared — intended for the small topologies the `modelcheck`
/// scenario mode explores.
pub fn check_pair_corruptions(
    base: &McNet<GrpNode>,
    checker: &GrpChecker,
    config: &ExploreConfig,
) -> Vec<PairCorruptionCase> {
    let universe: Vec<NodeId> = base.nodes.keys().copied().collect();
    let mut cases = Vec::new();
    for (i, &a) in universe.iter().enumerate() {
        let a_variants = base.nodes[&a].enumerate_corruptions(&universe);
        for &b in &universe[i + 1..] {
            let b_variants = base.nodes[&b].enumerate_corruptions(&universe);
            for (a_name, a_corrupted) in &a_variants {
                for (b_name, b_corrupted) in &b_variants {
                    let mut net = base.clone();
                    net.nodes.insert(a, a_corrupted.clone());
                    net.nodes.insert(b, b_corrupted.clone());
                    let report = explore(&net, checker, config);
                    cases.push(PairCorruptionCase {
                        node: a,
                        partner: b,
                        variant: a_name.clone(),
                        partner_variant: b_name.clone(),
                        report,
                    });
                }
            }
        }
    }
    cases
}

/// A lasso found by iterating the synchronous schedule: `stem_rounds`
/// rounds reach the cycle entry, the following `period_rounds` rounds
/// return to it. `trace` is the full flat choice sequence (replayable from
/// the starting configuration); `entry_hash` is the drained cycle entry's
/// canonical hash. A `period_rounds` of 1 means the schedule reached a
/// fixpoint; anything larger is a genuine oscillation.
pub struct SyncLasso {
    pub stem_rounds: usize,
    pub period_rounds: usize,
    pub trace: Vec<Choice>,
    pub entry_hash: TraceDigest,
}

/// Iterate the fully synchronous schedule from `start`, hashing the
/// drained configuration after every round, until a configuration repeats
/// (returns the lasso) or `max_rounds` elapse (returns `None`). Because
/// the schedule is deterministic, a repeated hash proves the execution is
/// periodic forever after.
pub fn find_synchronous_lasso(start: &McNet<GrpNode>, max_rounds: usize) -> Option<SyncLasso> {
    let mut net = start.clone();
    let mut trace: Vec<Choice> = Vec::new();
    // drained-configuration hash -> round index at which it was seen
    let mut seen: BTreeMap<[u8; 32], usize> = BTreeMap::new();
    for round in 0..max_rounds {
        let choices = synchronous_round(&mut net);
        trace.extend(choices);
        let mut drained = net.clone();
        let drain_choices = drain_recording(&mut drained);
        let hash = drained.state_hash();
        if let Some(&entry_round) = seen.get(&hash.0) {
            // close the lasso on the *drained* configuration: the trace
            // runs through the current round, then drains, ending in a
            // state whose hash matches the round-`entry_round` state
            trace.extend(drain_choices);
            return Some(SyncLasso {
                stem_rounds: entry_round + 1,
                period_rounds: round - entry_round,
                trace,
                entry_hash: hash,
            });
        }
        seen.insert(hash.0, round);
    }
    None
}

fn drain_recording(net: &mut McNet<GrpNode>) -> Vec<Choice> {
    let mut applied = Vec::new();
    loop {
        let pending: Vec<(NodeId, NodeId)> = net.channels.keys().copied().collect();
        if pending.is_empty() {
            return applied;
        }
        for (from, to) in pending {
            let choice = Choice::Deliver { from, to };
            net.apply(choice);
            applied.push(choice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Outcome;
    use crate::state::FaultBudget;
    use dyngraph::generators::{complete, path};

    #[test]
    fn warmup_reaches_quiescent_legitimate_state() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        assert!(base.channels.is_empty(), "warmup ends drained");
        let checker = GrpChecker::new(2);
        assert!(checker.goal(&base));
        // quiescent legitimate state is a synchronous fixpoint
        let lasso = find_synchronous_lasso(&base, 8).expect("steady state repeats");
        assert_eq!(lasso.period_rounds, 1);
    }

    #[test]
    fn triangle_corruptions_all_reconverge() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let checker = GrpChecker::new(2);
        let cases = check_corruptions(&base, &checker, &ExploreConfig::default());
        assert_eq!(cases.len(), 9, "3 nodes x 3 applicable variants");
        for case in &cases {
            assert!(
                case.report.converged(),
                "node {} variant {} did not converge: {:?}",
                case.node.raw(),
                case.variant,
                case.report.outcome
            );
        }
    }

    #[test]
    fn corruption_catalogue_is_deterministic() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let run = || {
            let checker = GrpChecker::new(2);
            check_corruptions(&base, &checker, &ExploreConfig::default())
                .into_iter()
                .map(|c| (c.node, c.variant, c.report.visited))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn triangle_pair_corruptions_all_reconverge() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let checker = GrpChecker::new(2);
        let cases = check_pair_corruptions(&base, &checker, &ExploreConfig::default());
        assert_eq!(cases.len(), 27, "3 pairs x 3x3 variant combinations");
        for case in &cases {
            assert!(case.node < case.partner, "pairs are unordered, a < b");
            assert!(
                case.report.converged(),
                "pair ({}, {}) variants ({}, {}) did not converge: {:?}",
                case.node.raw(),
                case.partner.raw(),
                case.variant,
                case.partner_variant,
                case.report.outcome
            );
        }
    }

    #[test]
    fn pair_corruption_catalogue_is_deterministic() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let run = || {
            let checker = GrpChecker::new(2);
            check_pair_corruptions(&base, &checker, &ExploreConfig::default())
                .into_iter()
                .map(|c| {
                    (
                        c.node,
                        c.partner,
                        c.variant,
                        c.partner_variant,
                        c.report.visited,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn path5_dmax2_synchronous_schedule_oscillates() {
        // The boundary oscillation pinned in tests/data/path5_dmax2_sync.trace
        // (replayed by tests/oscillation.rs): node 2 sits
        // between the {0,1} and {3,4} groups and is never admitted by
        // either side while every compute stays perfectly synchronous.
        let config = GrpConfig::new(2);
        let net = fresh_net(path(5), &config);
        let lasso = find_synchronous_lasso(&net, 64).expect("schedule is periodic");
        assert!(lasso.period_rounds > 1, "period {}", lasso.period_rounds);
        let entry = crate::replay(&net, &lasso.trace, FaultBudget::default()).expect("replays");
        assert_eq!(entry.state_hash(), lasso.entry_hash);
        let checker = GrpChecker::new(2);
        assert!(!checker.goal(&entry), "the cycle never reaches legitimacy");
    }

    #[test]
    fn explorer_reports_stats_with_goal_pruning() {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let checker = GrpChecker::new(2);
        let report = explore(&base, &checker, &ExploreConfig::default());
        // the root is legitimate and (being quiescent + goal) the search
        // still expands it once
        assert!(report.converged());
        assert!(report.goal_states >= 1);
        let witness = report.witness.expect("legitimate root is its own witness");
        assert!(witness.choices.is_empty());
        matches!(report.outcome, Outcome::Converged);
    }
}

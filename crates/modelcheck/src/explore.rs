//! Bounded exploration of the transition system.
//!
//! The explorer runs an exhaustive breadth-first search from the initial
//! configuration, deduplicating states by canonical hash. Goal states
//! (configurations the [`Checker`] declares legitimate) are recorded but
//! not expanded — self-stabilization is a *reach-and-stay* property, and
//! what happens after legitimacy is the closure the protocol's own golden
//! scenarios already pin. With the goal frontier pruned, the question
//! "does every fair execution converge?" reduces to: the explored
//! non-goal subgraph is finite, has no dead ends, and is acyclic. The
//! first two fall out of the search itself; acyclicity is checked
//! afterwards by peeling (reverse topological order), and any residue is a
//! reachable fair cycle — a lasso-shaped counterexample the explorer
//! reconstructs as a replayable trace.
//!
//! One exception to goal-pruning: the *root* is always expanded, so a
//! search started from a legitimate configuration with a fault budget
//! still explores the faulty neighbourhood instead of terminating on the
//! spot. (Cycles that pass *through* a legitimate state are still treated
//! as converged — the protocol reached legitimacy; leaving it again
//! requires a fault, which the budget accounting makes a fresh state.)
//!
//! When the depth or state bound is hit, the search degrades gracefully:
//! the cut frontier is reported and seeded random walks probe beyond it
//! for invariant violations, so `BoundsExceeded` still carries evidence —
//! just not a proof.

use crate::state::{replay, Choice, FaultBudget, McNet};
use netsim::{CanonicalState, TraceDigest};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};

/// Invariant and goal hooks for a protocol under test.
pub trait Checker<P: CanonicalState> {
    /// Is this configuration legitimate? Goal states are recorded and
    /// pruned (see module docs).
    fn goal(&self, net: &McNet<P>) -> bool;

    /// A safety property that must hold in *every* reachable state. The
    /// default accepts everything.
    fn invariant(&self, net: &McNet<P>) -> Result<(), String> {
        let _ = net;
        Ok(())
    }
}

/// Exploration bounds and the fault budget.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// BFS depth bound: states this many choices from the root are kept
    /// as frontier but not expanded.
    pub depth: usize,
    /// Hard cap on distinct visited states.
    pub max_states: usize,
    /// Fault transitions available to the adversary.
    pub budget: FaultBudget,
    /// Random walks launched from the cut frontier when a bound is hit.
    pub walks: u32,
    /// Length of each random walk.
    pub walk_depth: usize,
    /// Seed for the walk scheduler.
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            depth: 256,
            max_states: 200_000,
            budget: FaultBudget::default(),
            walks: 16,
            walk_depth: 256,
            seed: 1,
        }
    }
}

/// A replayable scheduler trace with the hash of the state it ends in.
/// [`replay`](crate::replay) from the same initial configuration must
/// reproduce `end_hash` — that round-trip is the trace's integrity check.
#[derive(Clone, Debug)]
pub struct Trace {
    pub choices: Vec<Choice>,
    pub end_hash: TraceDigest,
}

/// What went wrong, with the evidence.
#[derive(Clone, Debug)]
pub enum Violation {
    /// `invariant()` rejected a reachable state; trace leads to it.
    Invariant { message: String, trace: Trace },
    /// A reachable non-goal state has no enabled transition.
    Stuck { trace: Trace },
    /// A fair execution that never converges: the trace is a lasso —
    /// `stem` choices reach the cycle entry, the remaining `period`
    /// choices return to it (`end_hash` is the cycle entry's hash).
    Cycle {
        stem: usize,
        period: usize,
        trace: Trace,
    },
}

/// Overall outcome of one exploration.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Exhaustive proof within the bounds: every fair execution from the
    /// root reaches a goal state.
    Converged,
    /// A counterexample was found.
    Violation(Violation),
    /// A bound was hit before the space was exhausted; random-walk
    /// statistics qualify the uncovered frontier.
    BoundsExceeded {
        frontier: usize,
        walks_run: u32,
        walks_reached_goal: u32,
    },
}

/// Exploration result plus the statistics the golden manifests pin.
#[derive(Clone, Debug)]
pub struct Report {
    pub outcome: Outcome,
    /// Distinct states visited (root included, goal states included).
    pub visited: u64,
    /// How many of the visited states were goal states.
    pub goal_states: u64,
    /// Deepest BFS layer reached.
    pub max_depth: usize,
    /// Trace to the first goal state discovered, if any — the replay-
    /// fidelity witness.
    pub witness: Option<Trace>,
}

impl Report {
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged)
    }
}

struct StateRec {
    hash: TraceDigest,
    parent: usize,
    via: Option<Choice>,
    depth: usize,
    goal: bool,
    /// Outgoing edges (choice, successor index); filled when expanded.
    succs: Vec<(Choice, usize)>,
    expanded: bool,
}

/// Reconstruct the scheduler trace from the root to `id` via BFS parents.
fn path_to(recs: &[StateRec], id: usize) -> Vec<Choice> {
    let mut choices = Vec::new();
    let mut cur = id;
    while let Some(choice) = recs[cur].via {
        choices.push(choice);
        cur = recs[cur].parent;
    }
    choices.reverse();
    choices
}

/// Explore the transition system rooted at `initial`. Deterministic: same
/// configuration and same checker give the same report, state numbering
/// and counterexample.
pub fn explore<P, C>(initial: &McNet<P>, checker: &C, config: &ExploreConfig) -> Report
where
    P: CanonicalState,
    C: Checker<P>,
{
    let mut recs: Vec<StateRec> = Vec::new();
    let mut index: HashMap<TraceDigest, usize> = HashMap::new();
    let mut queue: VecDeque<(usize, McNet<P>)> = VecDeque::new();
    let mut frontier: Vec<(usize, McNet<P>)> = Vec::new();
    let mut goal_states = 0u64;
    let mut max_depth = 0usize;
    let mut witness_id: Option<usize> = None;

    let report = |recs: &[StateRec], outcome, goal_states, max_depth, witness_id: Option<usize>| {
        let witness = witness_id.map(|id| Trace {
            choices: path_to(recs, id),
            end_hash: recs[id].hash,
        });
        Report {
            outcome,
            visited: recs.len() as u64,
            goal_states,
            max_depth,
            witness,
        }
    };

    let root_hash = initial.state_hash();
    let root_goal = checker.goal(initial);
    if root_goal {
        goal_states += 1;
        witness_id = Some(0);
    }
    recs.push(StateRec {
        hash: root_hash,
        parent: 0,
        via: None,
        depth: 0,
        goal: root_goal,
        succs: Vec::new(),
        expanded: false,
    });
    index.insert(root_hash, 0);
    if let Err(message) = checker.invariant(initial) {
        let trace = Trace {
            choices: Vec::new(),
            end_hash: root_hash,
        };
        return report(
            &recs,
            Outcome::Violation(Violation::Invariant { message, trace }),
            goal_states,
            0,
            witness_id,
        );
    }
    // the root is expanded even when legitimate (see module docs)
    queue.push_back((0, initial.clone()));

    while let Some((id, state)) = queue.pop_front() {
        let depth = recs[id].depth;
        max_depth = max_depth.max(depth);
        if depth >= config.depth {
            frontier.push((id, state));
            continue;
        }
        let choices = state.enabled_choices(config.budget);
        if choices.is_empty() {
            if recs[id].goal {
                // a terminal goal state is converged-and-halted: fine
                recs[id].expanded = true;
                continue;
            }
            let trace = Trace {
                choices: path_to(&recs, id),
                end_hash: recs[id].hash,
            };
            return report(
                &recs,
                Outcome::Violation(Violation::Stuck { trace }),
                goal_states,
                max_depth,
                witness_id,
            );
        }
        for choice in choices {
            let mut succ = state.clone();
            succ.apply(choice);
            let hash = succ.state_hash();
            if let Err(message) = checker.invariant(&succ) {
                let mut choices = path_to(&recs, id);
                choices.push(choice);
                let trace = Trace {
                    choices,
                    end_hash: hash,
                };
                return report(
                    &recs,
                    Outcome::Violation(Violation::Invariant { message, trace }),
                    goal_states,
                    max_depth,
                    witness_id,
                );
            }
            let succ_id = match index.get(&hash) {
                Some(&existing) => existing,
                None => {
                    if recs.len() >= config.max_states {
                        // frontier size is approximated by what is left
                        // unexpanded; the walks still start from it
                        frontier.extend(queue.drain(..));
                        frontier.push((id, state));
                        return finish_bounded(
                            recs,
                            frontier,
                            checker,
                            config,
                            goal_states,
                            max_depth,
                            witness_id,
                        );
                    }
                    let new_id = recs.len();
                    let goal = checker.goal(&succ);
                    if goal {
                        goal_states += 1;
                        if witness_id.is_none() {
                            witness_id = Some(new_id);
                        }
                    }
                    recs.push(StateRec {
                        hash,
                        parent: id,
                        via: Some(choice),
                        depth: depth + 1,
                        goal,
                        succs: Vec::new(),
                        expanded: false,
                    });
                    index.insert(hash, new_id);
                    if !goal {
                        queue.push_back((new_id, succ));
                    }
                    new_id
                }
            };
            recs[id].succs.push((choice, succ_id));
        }
        recs[id].expanded = true;
    }

    if !frontier.is_empty() {
        return finish_bounded(
            recs,
            frontier,
            checker,
            config,
            goal_states,
            max_depth,
            witness_id,
        );
    }

    // Exhausted within bounds: the non-goal subgraph is fully expanded.
    // Acyclic means every fair execution falls into a goal state.
    match find_cycle(&recs) {
        None => report(
            &recs,
            Outcome::Converged,
            goal_states,
            max_depth,
            witness_id,
        ),
        Some((entry, cycle_choices)) => {
            let stem_choices = path_to(&recs, entry);
            let stem = stem_choices.len();
            let period = cycle_choices.len();
            let mut choices = stem_choices;
            choices.extend(cycle_choices);
            let trace = Trace {
                choices,
                end_hash: recs[entry].hash,
            };
            report(
                &recs,
                Outcome::Violation(Violation::Cycle {
                    stem,
                    period,
                    trace,
                }),
                goal_states,
                max_depth,
                witness_id,
            )
        }
    }
}

/// Peel the non-goal subgraph in reverse topological order. `None` if it
/// is acyclic; otherwise a state on a cycle plus the choices around it.
fn find_cycle(recs: &[StateRec]) -> Option<(usize, Vec<Choice>)> {
    // out-degree restricted to non-goal targets
    let mut outdeg: Vec<usize> = vec![0; recs.len()];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
    for (id, rec) in recs.iter().enumerate() {
        if rec.goal {
            continue;
        }
        for &(_, succ) in &rec.succs {
            if !recs[succ].goal {
                outdeg[id] += 1;
                preds[succ].push(id);
            }
        }
    }
    let mut removable: VecDeque<usize> = (0..recs.len())
        .filter(|&id| !recs[id].goal && outdeg[id] == 0)
        .collect();
    let mut remaining: Vec<bool> = recs.iter().map(|r| !r.goal).collect();
    while let Some(id) = removable.pop_front() {
        remaining[id] = false;
        for &p in &preds[id] {
            if remaining[p] {
                outdeg[p] -= 1;
                if outdeg[p] == 0 {
                    removable.push_back(p);
                }
            }
        }
    }
    // Everything left has an outgoing edge into the residue: walk first
    // such edges until a state repeats — that loop is the cycle.
    let start = remaining.iter().position(|&r| r)?;
    let mut seen_at: HashMap<usize, usize> = HashMap::new();
    let mut walk: Vec<(usize, Choice)> = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&pos) = seen_at.get(&cur) {
            let cycle_choices = walk[pos..].iter().map(|&(_, c)| c).collect();
            return Some((cur, cycle_choices));
        }
        seen_at.insert(cur, walk.len());
        let &(choice, next) = recs[cur]
            .succs
            .iter()
            .find(|&&(_, s)| remaining[s])
            // detlint::allow(D004): Kahn peeling only leaves states whose
            // out-degree within the residue is ≥ 1, so the find cannot miss
            .expect("residue state must have a successor in the residue");
        walk.push((cur, choice));
        cur = next;
    }
}

/// A bound was hit: launch seeded random walks from the cut frontier,
/// looking for invariant violations and measuring how often walks still
/// reach a goal state.
fn finish_bounded<P, C>(
    recs: Vec<StateRec>,
    frontier: Vec<(usize, McNet<P>)>,
    checker: &C,
    config: &ExploreConfig,
    goal_states: u64,
    max_depth: usize,
    witness_id: Option<usize>,
) -> Report
where
    P: CanonicalState,
    C: Checker<P>,
{
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut walks_run = 0u32;
    let mut walks_reached_goal = 0u32;
    let mut violation: Option<Violation> = None;

    'walks: for w in 0..config.walks {
        if frontier.is_empty() {
            break;
        }
        let (start_id, start) = &frontier[w as usize % frontier.len()];
        let mut state = start.clone();
        let mut extra: Vec<Choice> = Vec::new();
        walks_run += 1;
        for _ in 0..config.walk_depth {
            if checker.goal(&state) {
                walks_reached_goal += 1;
                break;
            }
            let choices = state.enabled_choices(config.budget);
            if choices.is_empty() {
                let mut all = path_to(&recs, *start_id);
                all.extend(&extra);
                violation = Some(Violation::Stuck {
                    trace: Trace {
                        choices: all,
                        end_hash: state.state_hash(),
                    },
                });
                break 'walks;
            }
            let choice = choices[rng.gen_range(0..choices.len())];
            state.apply(choice);
            extra.push(choice);
            if let Err(message) = checker.invariant(&state) {
                let mut all = path_to(&recs, *start_id);
                all.extend(&extra);
                violation = Some(Violation::Invariant {
                    message,
                    trace: Trace {
                        choices: all,
                        end_hash: state.state_hash(),
                    },
                });
                break 'walks;
            }
        }
    }

    let outcome = match violation {
        Some(v) => Outcome::Violation(v),
        None => Outcome::BoundsExceeded {
            frontier: frontier.len(),
            walks_run,
            walks_reached_goal,
        },
    };
    let witness = witness_id.map(|id| Trace {
        choices: path_to(&recs, id),
        end_hash: recs[id].hash,
    });
    Report {
        outcome,
        visited: recs.len() as u64,
        goal_states,
        max_depth,
        witness,
    }
}

/// Check a trace against its recorded end hash by re-executing it.
pub fn verify_trace<P: CanonicalState>(
    initial: &McNet<P>,
    trace: &Trace,
    budget: FaultBudget,
) -> Result<McNet<P>, String> {
    let net = replay(initial, &trace.choices, budget)?;
    let got = net.state_hash();
    if got != trace.end_hash {
        return Err(format!(
            "trace end hash mismatch: expected {}, replayed to {}",
            trace.end_hash.to_hex(),
            got.to_hex()
        ));
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grp::{fresh_net, legitimate_start, GrpChecker};
    use crate::state::McNet;
    use dyngraph::generators::{complete, path};
    use dyngraph::NodeId;
    use grp_core::{GrpConfig, GrpNode};

    fn corrupted_triangle() -> McNet<GrpNode> {
        let config = GrpConfig::new(2);
        let base = legitimate_start(complete(3), &config, 64).expect("warmup");
        let universe: Vec<NodeId> = base.nodes.keys().copied().collect();
        let (_, corrupted) = base.nodes[&NodeId(0)]
            .enumerate_corruptions(&universe)
            .into_iter()
            .next()
            .expect("catalogue non-empty");
        let mut net = base;
        net.nodes.insert(NodeId(0), corrupted);
        net
    }

    #[test]
    fn exploration_is_deterministic() {
        let net = corrupted_triangle();
        let run = || {
            let checker = GrpChecker::new(2);
            let report = explore(&net, &checker, &ExploreConfig::default());
            let witness = report
                .witness
                .as_ref()
                .map(|t| (t.choices.clone(), t.end_hash));
            (
                report.visited,
                report.goal_states,
                report.max_depth,
                witness,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn witness_trace_replays_to_its_end_hash() {
        let net = corrupted_triangle();
        let checker = GrpChecker::new(2);
        let report = explore(&net, &checker, &ExploreConfig::default());
        assert!(report.converged());
        let witness = report.witness.expect("convergent run has a witness");
        let end = verify_trace(&net, &witness, FaultBudget::default()).expect("witness replays");
        assert!(checker.goal(&end), "witness ends in a goal state");
    }

    #[test]
    fn lone_node_with_unreachable_goal_is_a_cycle() {
        // A single node computing forever maps back to the same canonical
        // state (relative rounds): with a goal that never holds, the
        // explorer must report the self-loop as a fair non-converging
        // cycle rather than claiming convergence.
        struct Never;
        impl Checker<GrpNode> for Never {
            fn goal(&self, _net: &McNet<GrpNode>) -> bool {
                false
            }
        }
        let config = GrpConfig::new(1);
        let net = fresh_net(path(1), &config);
        let report = explore(&net, &Never, &ExploreConfig::default());
        match &report.outcome {
            Outcome::Violation(Violation::Cycle { period, trace, .. }) => {
                assert!(*period >= 1);
                let end = verify_trace(&net, trace, FaultBudget::default()).expect("lasso replays");
                assert_eq!(end.state_hash(), trace.end_hash);
            }
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn invariant_violations_carry_a_replayable_trace() {
        struct NoGhosts;
        impl Checker<GrpNode> for NoGhosts {
            fn goal(&self, _net: &McNet<GrpNode>) -> bool {
                false
            }
            fn invariant(&self, net: &McNet<GrpNode>) -> Result<(), String> {
                for (id, node) in &net.nodes {
                    if node.view().iter().any(|v| v.raw() >= 900_000) {
                        return Err(format!("node {} sees a ghost", id.raw()));
                    }
                }
                Ok(())
            }
        }
        let net = corrupted_triangle(); // first variant is ghost-member
        let report = explore(&net, &NoGhosts, &ExploreConfig::default());
        match &report.outcome {
            Outcome::Violation(Violation::Invariant { message, trace }) => {
                assert!(message.contains("ghost"));
                // the corrupted initial state itself violates it
                assert!(trace.choices.is_empty());
                verify_trace(&net, trace, FaultBudget::default()).expect("trace replays");
            }
            other => panic!("expected invariant violation, got {other:?}"),
        }
    }

    /// The crash budget cannot be pinned exhaustively (unlike the drop and
    /// duplicate budgets mc04 proves out): during a crash window the
    /// survivor ages its peer out of the group and pumps its priority
    /// "oldness" clock, and after the reboot adversarial interleavings can
    /// re-trigger that in-group → alone transition, so each pump is a
    /// canonically distinct non-goal state and the reachable set never
    /// closes. This test pins the honest verdict instead: the search
    /// degrades to `BoundsExceeded`, and every random walk launched from
    /// the cut frontier still reaches legitimacy — evidence, not proof.
    #[test]
    fn crash_budget_is_depth_unbounded() {
        let config = GrpConfig::new(2);
        let net = legitimate_start(complete(2), &config, 64).expect("warmup");
        let checker = GrpChecker::new(2);
        let explore_config = ExploreConfig {
            depth: 24,
            max_states: 10_000,
            budget: FaultBudget {
                max_crashes: 1,
                ..Default::default()
            },
            walks: 8,
            walk_depth: 512,
            seed: 1,
        };
        let report = explore(&net, &checker, &explore_config);
        match report.outcome {
            Outcome::BoundsExceeded {
                frontier,
                walks_run,
                walks_reached_goal,
            } => {
                assert!(frontier > 0, "the crash frontier never closes");
                assert_eq!(walks_run, 8);
                assert_eq!(
                    walks_reached_goal, walks_run,
                    "every probe walk must recover legitimacy"
                );
            }
            other => panic!("expected bounds exceeded, got {other:?}"),
        }
    }

    #[test]
    fn bounds_exceeded_reports_frontier_and_walks() {
        let net = corrupted_triangle();
        let checker = GrpChecker::new(2);
        let config = ExploreConfig {
            depth: 2,
            walks: 4,
            walk_depth: 64,
            ..Default::default()
        };
        let report = explore(&net, &checker, &config);
        match report.outcome {
            Outcome::BoundsExceeded {
                frontier,
                walks_run,
                walks_reached_goal,
            } => {
                assert!(frontier > 0);
                assert_eq!(walks_run, 4);
                assert!(
                    walks_reached_goal > 0,
                    "random walks recover on the triangle"
                );
            }
            other => panic!("expected bounds exceeded, got {other:?}"),
        }
    }
}

//! # modelcheck — a bounded state-space explorer for view protocols
//!
//! The paper's central claim is *self-stabilization*: started from an
//! arbitrary configuration, GRP converges to a legitimate one (ΠA ∧ ΠS ∧
//! ΠM) and stays there. The simulation scenarios sample that claim along
//! individual random executions; this crate checks it *mechanically* on
//! small instances by enumerating every fair schedule.
//!
//! The pieces:
//!
//! * [`McNet`] — a configuration: per-node protocol state (anything
//!   implementing [`netsim::CanonicalState`]), the in-flight message
//!   multiset, the crashed set, and per-node round counters;
//! * [`Choice`] — the scheduler's transition alphabet (deliver, compute,
//!   drop, duplicate, crash, reboot), with a stable textual form so traces
//!   can be checked in as files;
//! * [`explore`] — exhaustive BFS with hash-based visited-state
//!   deduplication, goal-pruning at legitimate states, post-hoc acyclicity
//!   checking of the non-goal subgraph, and seeded random walks past the
//!   bounds ([`ExploreConfig`], [`Report`], [`Outcome`], [`Violation`]);
//! * [`replay`] / [`verify_trace`] — deterministic re-execution of a
//!   choice sequence, the format every counterexample is emitted in;
//! * [`grp`] — the GRP instantiation: legitimacy as the goal, warm-up to a
//!   legitimate start, the single-node corruption catalogue, and the
//!   synchronous-schedule lasso finder behind the pinned oscillation
//!   counterexample.
//!
//! Fairness is built into the transition rules rather than filtered after
//! the fact — see the [`state`] module docs — so every cycle the explorer
//! reports is an execution the simulator could actually produce.

#![forbid(unsafe_code)]

pub mod explore;
pub mod grp;
pub mod state;

pub use explore::{
    explore, verify_trace, Checker, ExploreConfig, Outcome, Report, Trace, Violation,
};
pub use grp::{
    check_corruptions, check_pair_corruptions, find_synchronous_lasso, fresh_net, legitimate_start,
    snapshot_of, synchronous_round, CorruptionCase, GrpChecker, PairCorruptionCase, SyncLasso,
};
pub use state::{parse_trace, replay, Choice, FaultBudget, McNet, CHANNEL_CAP};

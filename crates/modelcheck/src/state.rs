//! The explorer's configuration space: a network of protocol instances, the
//! in-flight message multiset, the crashed set — and the transition
//! alphabet the scheduler chooses from.
//!
//! ## The scheduling model
//!
//! Transitions are the adversary's moves: deliver a pending message, run a
//! node's compute step, or (when the fault budget allows) drop/duplicate a
//! message, crash a node, reboot it. Two structural constraints shape the
//! space:
//!
//! * **Lockstep bound** — a node may only run its compute step while its
//!   round counter equals the minimum over the alive nodes, so no node runs
//!   arbitrarily far ahead. This models the paper's periodic `Tc` timers
//!   (every node computes once per period) without fixing an order inside
//!   the period.
//! * **Send-blocking** — a node may only compute while its *outbound*
//!   channels are empty, i.e. its previous broadcast has been delivered (or
//!   dropped by an explicit fault) everywhere. This models
//!   `delivery_delay ≪ send_period`: in the simulator a broadcast is always
//!   consumed before the next one is emitted.
//!
//! Together these two rules make every infinite execution *fair* by
//! construction: a pending message blocks its sender's compute, the
//! lockstep bound then stalls every other node at the sender's round, and
//! the only enabled transitions left are deliveries — so no message is
//! starved forever and no node stops computing. Any cycle the explorer
//! finds is therefore a genuine fair non-converging execution, not a
//! scheduling artefact. The fully synchronous regime (every node computes
//! on the previous round's messages) is the schedule *deliver everything,
//! then compute everyone*; the staggered regime interleaves deliveries
//! between computes.

use dyngraph::{Graph, NodeId};
use netsim::{CanonicalHasher, CanonicalState, SimTime, TraceDigest};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Maximum messages queued per ordered `(sender, receiver)` pair. Without
/// duplication faults the send-blocking rule keeps queues at one message;
/// a duplicate adds the second slot.
pub const CHANNEL_CAP: usize = 2;

/// One scheduler move. The sequence of choices from the initial
/// configuration *is* the counterexample format: traces re-execute through
/// [`replay`](crate::replay) and print/parse as one line per choice
/// (`deliver 2 0`, `compute 1`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the oldest pending message on channel `from → to`.
    Deliver { from: NodeId, to: NodeId },
    /// Drop the oldest pending message on channel `from → to` (fault).
    Drop { from: NodeId, to: NodeId },
    /// Duplicate the oldest pending message on `from → to` (fault).
    Duplicate { from: NodeId, to: NodeId },
    /// Run `node`'s compute step and broadcast the resulting message.
    Compute { node: NodeId },
    /// Crash `node`: state frozen, channels to/from it purged (fault).
    Crash { node: NodeId },
    /// Reboot a crashed node into its freshly-booted state.
    Reboot { node: NodeId },
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Choice::Deliver { from, to } => write!(f, "deliver {} {}", from.raw(), to.raw()),
            Choice::Drop { from, to } => write!(f, "drop {} {}", from.raw(), to.raw()),
            Choice::Duplicate { from, to } => write!(f, "duplicate {} {}", from.raw(), to.raw()),
            Choice::Compute { node } => write!(f, "compute {}", node.raw()),
            Choice::Crash { node } => write!(f, "crash {}", node.raw()),
            Choice::Reboot { node } => write!(f, "reboot {}", node.raw()),
        }
    }
}

impl Choice {
    /// Parse the [`Display`] form back (used by checked-in trace files).
    pub fn parse(line: &str) -> Option<Choice> {
        let mut parts = line.split_whitespace();
        let kind = parts.next()?;
        let mut next_id = || parts.next()?.parse::<u64>().ok().map(NodeId);
        let choice = match kind {
            "deliver" => Choice::Deliver {
                from: next_id()?,
                to: next_id()?,
            },
            "drop" => Choice::Drop {
                from: next_id()?,
                to: next_id()?,
            },
            "duplicate" => Choice::Duplicate {
                from: next_id()?,
                to: next_id()?,
            },
            "compute" => Choice::Compute { node: next_id()? },
            "crash" => Choice::Crash { node: next_id()? },
            "reboot" => Choice::Reboot { node: next_id()? },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(choice)
    }
}

/// Parse a checked-in trace file: one [`Choice`] per line in its
/// [`Display`] form, with blank lines and `#` comment lines ignored.
/// Errors name the offending 1-based line.
pub fn parse_trace(text: &str) -> Result<Vec<Choice>, String> {
    let mut choices = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match Choice::parse(line) {
            Some(choice) => choices.push(choice),
            None => return Err(format!("line {}: cannot parse `{line}`", idx + 1)),
        }
    }
    Ok(choices)
}

/// How many fault transitions the adversary may take. All-zero (the
/// default) disables fault transitions entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultBudget {
    pub max_drops: u32,
    pub max_duplicates: u32,
    pub max_crashes: u32,
}

/// One configuration of the transition system.
#[derive(Clone, Debug)]
pub struct McNet<P: CanonicalState> {
    /// The (static) communication topology.
    pub topology: Arc<Graph>,
    /// Per-node protocol state.
    pub nodes: BTreeMap<NodeId, P>,
    /// Nodes currently crashed (state frozen, radio off).
    pub crashed: BTreeSet<NodeId>,
    /// In-flight messages: per ordered pair, oldest first. Empty queues are
    /// never stored (the map is part of the canonical encoding).
    pub channels: BTreeMap<(NodeId, NodeId), VecDeque<P::Message>>,
    /// Compute-round counter per node. Only differences matter: the
    /// canonical encoding subtracts the minimum alive round, so steady
    /// cycles deduplicate.
    pub rounds: BTreeMap<NodeId, u64>,
    /// Fault transitions consumed so far.
    pub drops_used: u32,
    pub dups_used: u32,
    pub crashes_used: u32,
}

impl<P: CanonicalState> McNet<P> {
    /// A network of freshly-constructed nodes over a topology.
    pub fn new(topology: Graph, nodes: impl IntoIterator<Item = P>) -> Self {
        let nodes: BTreeMap<NodeId, P> = nodes.into_iter().map(|p| (p.id(), p)).collect();
        let rounds = nodes.keys().map(|&id| (id, 0)).collect();
        McNet {
            topology: Arc::new(topology),
            nodes,
            crashed: BTreeSet::new(),
            channels: BTreeMap::new(),
            rounds,
            drops_used: 0,
            dups_used: 0,
            crashes_used: 0,
        }
    }

    /// Is the node up?
    pub fn is_alive(&self, id: NodeId) -> bool {
        !self.crashed.contains(&id)
    }

    /// The minimum round counter over alive nodes (0 when all are down).
    pub fn min_alive_round(&self) -> u64 {
        self.rounds
            .iter()
            .filter(|(id, _)| self.is_alive(**id))
            .map(|(_, &r)| r)
            .min()
            .unwrap_or(0)
    }

    fn outbound_empty(&self, id: NodeId) -> bool {
        self.channels
            .range((id, NodeId(0))..=(id, NodeId(u64::MAX)))
            .next()
            .is_none()
    }

    /// May `choice` fire in this configuration under `budget`?
    pub fn is_enabled(&self, choice: Choice, budget: FaultBudget) -> bool {
        match choice {
            Choice::Deliver { from, to } => self.channels.contains_key(&(from, to)),
            Choice::Drop { from, to } => {
                self.drops_used < budget.max_drops && self.channels.contains_key(&(from, to))
            }
            Choice::Duplicate { from, to } => {
                self.dups_used < budget.max_duplicates
                    && self
                        .channels
                        .get(&(from, to))
                        .is_some_and(|q| q.len() < CHANNEL_CAP)
            }
            Choice::Compute { node } => {
                self.nodes.contains_key(&node)
                    && self.is_alive(node)
                    && self.rounds.get(&node) == Some(&self.min_alive_round())
                    && self.outbound_empty(node)
            }
            Choice::Crash { node } => {
                self.crashes_used < budget.max_crashes
                    && self.nodes.contains_key(&node)
                    && self.is_alive(node)
            }
            Choice::Reboot { node } => self.crashed.contains(&node),
        }
    }

    /// Every enabled choice, in canonical order: deliveries (by channel
    /// key), computes (by node id), then faults. The order is part of the
    /// determinism contract — BFS discovery order, and therefore state
    /// numbering and the first counterexample, follow it.
    pub fn enabled_choices(&self, budget: FaultBudget) -> Vec<Choice> {
        let mut choices = Vec::new();
        for &(from, to) in self.channels.keys() {
            choices.push(Choice::Deliver { from, to });
        }
        let min = self.min_alive_round();
        for (&id, &round) in &self.rounds {
            if self.is_alive(id) && round == min && self.outbound_empty(id) {
                choices.push(Choice::Compute { node: id });
            }
        }
        if self.drops_used < budget.max_drops {
            for &(from, to) in self.channels.keys() {
                choices.push(Choice::Drop { from, to });
            }
        }
        if self.dups_used < budget.max_duplicates {
            for (&(from, to), queue) in &self.channels {
                if queue.len() < CHANNEL_CAP {
                    choices.push(Choice::Duplicate { from, to });
                }
            }
        }
        if self.crashes_used < budget.max_crashes {
            for &id in self.nodes.keys() {
                if self.is_alive(id) {
                    choices.push(Choice::Crash { node: id });
                }
            }
        }
        for &id in &self.crashed {
            choices.push(Choice::Reboot { node: id });
        }
        choices
    }

    /// Apply an (enabled) choice in place. Callers are expected to have
    /// checked [`is_enabled`](Self::is_enabled); applying a disabled choice
    /// is a logic error and panics on missing queues/nodes.
    pub fn apply(&mut self, choice: Choice) {
        match choice {
            Choice::Deliver { from, to } => {
                let msg = self.pop_channel(from, to);
                if self.is_alive(to) {
                    if let Some(node) = self.nodes.get_mut(&to) {
                        node.on_message(from, msg, SimTime(0));
                    }
                }
            }
            Choice::Drop { from, to } => {
                self.pop_channel(from, to);
                self.drops_used += 1;
            }
            Choice::Duplicate { from, to } => {
                // detlint::allow(D004): apply's documented contract — callers
                // check is_enabled first, so the channel exists
                let queue = self.channels.get_mut(&(from, to)).expect("enabled");
                // detlint::allow(D004): empty channels are removed eagerly
                let copy = queue.front().expect("non-empty").clone();
                queue.push_back(copy);
                self.dups_used += 1;
            }
            Choice::Compute { node } => {
                let round = self.rounds.get(&node).copied().unwrap_or(0);
                // detlint::allow(D004): apply's documented contract — Compute
                // is only enabled for nodes in the net
                let proto = self.nodes.get_mut(&node).expect("enabled");
                proto.on_compute(SimTime(0));
                let broadcast = proto.on_send(SimTime(0));
                if let Some(msg) = broadcast {
                    let mut neighbours: Vec<NodeId> = self.topology.neighbors(node).collect();
                    neighbours.sort_unstable();
                    for to in neighbours {
                        if self.is_alive(to) && self.nodes.contains_key(&to) {
                            self.channels
                                .entry((node, to))
                                .or_default()
                                .push_back(msg.clone());
                        }
                    }
                }
                self.rounds.insert(node, round + 1);
            }
            Choice::Crash { node } => {
                self.crashed.insert(node);
                self.channels
                    .retain(|&(from, to), _| from != node && to != node);
                self.crashes_used += 1;
            }
            Choice::Reboot { node } => {
                self.crashed.remove(&node);
                if let Some(proto) = self.nodes.get_mut(&node) {
                    proto.reset();
                }
                // rejoin at the current minimum so the lockstep bound is
                // immediately satisfiable again
                let min = self.min_alive_round();
                self.rounds.insert(node, min);
            }
        }
    }

    fn pop_channel(&mut self, from: NodeId, to: NodeId) -> P::Message {
        // detlint::allow(D004): apply's documented contract — callers check
        // is_enabled first, so the channel exists
        let queue = self.channels.get_mut(&(from, to)).expect("enabled");
        // detlint::allow(D004): empty channels are removed eagerly below
        let msg = queue.pop_front().expect("non-empty");
        if queue.is_empty() {
            self.channels.remove(&(from, to));
        }
        msg
    }

    /// The canonical hash of this configuration — the visited-set key.
    /// Round counters enter *relative* to the minimum alive round, so a
    /// steady protocol cycle revisits the same hash even though absolute
    /// rounds grow forever.
    pub fn state_hash(&self) -> TraceDigest {
        let mut hasher = CanonicalHasher::new();
        let min = self.min_alive_round();
        hasher.begin_list("mc-net");
        hasher.feed_u64(self.nodes.len() as u64);
        for (&id, proto) in &self.nodes {
            hasher.feed_u64(id.raw());
            let alive = self.is_alive(id);
            hasher.feed_bool(alive);
            let round = self.rounds.get(&id).copied().unwrap_or(0);
            hasher.feed_u64(if alive { round - min } else { 0 });
            proto.feed_state(&mut hasher);
        }
        hasher.feed_u64(self.channels.len() as u64);
        for (&(from, to), queue) in &self.channels {
            hasher.feed_u64(from.raw());
            hasher.feed_u64(to.raw());
            hasher.feed_u64(queue.len() as u64);
            for msg in queue {
                P::feed_message(msg, &mut hasher);
            }
        }
        hasher.feed_u64(self.drops_used as u64);
        hasher.feed_u64(self.dups_used as u64);
        hasher.feed_u64(self.crashes_used as u64);
        hasher.end_list();
        hasher.finalize()
    }
}

/// Re-execute a trace of scheduler choices from an initial configuration.
/// Every choice is validated against the transition rules — a trace that
/// does not replay is corrupt (or the encoding drifted), and the error says
/// at which step.
pub fn replay<P: CanonicalState>(
    initial: &McNet<P>,
    trace: &[Choice],
    budget: FaultBudget,
) -> Result<McNet<P>, String> {
    let mut net = initial.clone();
    for (step, &choice) in trace.iter().enumerate() {
        if !net.is_enabled(choice, budget) {
            return Err(format!("step {step}: `{choice}` is not enabled"));
        }
        net.apply(choice);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::generators::path;
    use grp_core::{GrpConfig, GrpNode};

    fn two_nodes() -> McNet<GrpNode> {
        let config = GrpConfig::new(1);
        let nodes = (0..2).map(|i| GrpNode::new(NodeId(i), config.clone()));
        McNet::new(path(2), nodes)
    }

    #[test]
    fn choice_text_round_trips() {
        let choices = [
            Choice::Deliver {
                from: NodeId(2),
                to: NodeId(0),
            },
            Choice::Drop {
                from: NodeId(1),
                to: NodeId(3),
            },
            Choice::Duplicate {
                from: NodeId(0),
                to: NodeId(1),
            },
            Choice::Compute { node: NodeId(7) },
            Choice::Crash { node: NodeId(4) },
            Choice::Reboot { node: NodeId(4) },
        ];
        for c in choices {
            assert_eq!(Choice::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Choice::parse("deliver 1"), None);
        assert_eq!(Choice::parse("explode 1 2"), None);
        assert_eq!(Choice::parse("compute 1 2"), None);
    }

    #[test]
    fn compute_blocks_until_broadcast_is_delivered() {
        let budget = FaultBudget::default();
        let mut net = two_nodes();
        let c0 = Choice::Compute { node: NodeId(0) };
        assert!(net.is_enabled(c0, budget));
        net.apply(c0);
        // round advanced past the minimum AND outbound pending
        assert!(!net.is_enabled(c0, budget));
        assert!(net.channels.contains_key(&(NodeId(0), NodeId(1))));
        net.apply(Choice::Compute { node: NodeId(1) });
        net.apply(Choice::Deliver {
            from: NodeId(0),
            to: NodeId(1),
        });
        net.apply(Choice::Deliver {
            from: NodeId(1),
            to: NodeId(0),
        });
        // both at the same round, channels drained: enabled again
        assert!(net.is_enabled(c0, budget));
    }

    #[test]
    fn fault_transitions_respect_the_budget() {
        let budget = FaultBudget {
            max_drops: 1,
            max_duplicates: 1,
            max_crashes: 1,
        };
        let mut net = two_nodes();
        net.apply(Choice::Compute { node: NodeId(0) });
        let dup = Choice::Duplicate {
            from: NodeId(0),
            to: NodeId(1),
        };
        assert!(net.is_enabled(dup, budget));
        net.apply(dup);
        // channel at capacity and the budget is spent
        assert!(!net.is_enabled(dup, budget));
        let drop = Choice::Drop {
            from: NodeId(0),
            to: NodeId(1),
        };
        net.apply(drop);
        assert!(!net.is_enabled(drop, budget), "drop budget spent");
        assert!(net.is_enabled(
            Choice::Deliver {
                from: NodeId(0),
                to: NodeId(1)
            },
            budget
        ));
    }

    #[test]
    fn crash_purges_channels_and_reboot_rejoins_at_min_round() {
        let budget = FaultBudget {
            max_crashes: 1,
            ..Default::default()
        };
        let mut net = two_nodes();
        net.apply(Choice::Compute { node: NodeId(0) });
        net.apply(Choice::Crash { node: NodeId(1) });
        assert!(
            net.channels.is_empty(),
            "channels to/from the crashed node purged"
        );
        assert!(!net.is_enabled(Choice::Compute { node: NodeId(1) }, budget));
        // node 0 is now the only alive node: min round is its round
        assert!(net.is_enabled(Choice::Compute { node: NodeId(0) }, budget));
        net.apply(Choice::Reboot { node: NodeId(1) });
        assert_eq!(net.rounds[&NodeId(1)], net.min_alive_round());
        assert_eq!(net.nodes[&NodeId(1)].view().len(), 1, "reboot resets state");
    }

    #[test]
    fn state_hash_uses_relative_rounds() {
        let mut a = two_nodes();
        let h0 = a.state_hash();
        // one full synchronized round: both compute, all messages delivered
        net_round(&mut a);
        assert_ne!(h0, a.state_hash(), "first round changes protocol state");
        // run to the steady state, then one more round: node states and
        // channels repeat, and the growing absolute round counters must
        // not keep the hashes apart
        for _ in 0..16 {
            net_round(&mut a);
        }
        let steady = a.state_hash();
        net_round(&mut a);
        assert_eq!(steady, a.state_hash(), "steady rounds deduplicate");
    }

    fn net_round(net: &mut McNet<GrpNode>) {
        for id in [NodeId(0), NodeId(1)] {
            net.apply(Choice::Compute { node: id });
        }
        let pending: Vec<_> = net.channels.keys().copied().collect();
        for (f, t) in pending {
            net.apply(Choice::Deliver { from: f, to: t });
        }
    }

    #[test]
    fn replay_rejects_disabled_choices() {
        let net = two_nodes();
        let err = replay(
            &net,
            &[Choice::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            }],
            FaultBudget::default(),
        )
        .unwrap_err();
        assert!(err.contains("step 0"), "{err}");
        assert!(err.contains("not enabled"), "{err}");
    }
}

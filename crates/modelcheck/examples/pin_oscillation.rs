//! Regenerate the pinned synchronous-schedule oscillation trace.
//!
//! ```text
//! cargo run -p modelcheck --example pin_oscillation \
//!     > crates/modelcheck/tests/data/path5_dmax2_sync.trace
//! ```
//!
//! The artifact is the minimal documented counterexample to naive
//! convergence: five nodes in a line at `dmax = 2`, booted fresh and
//! driven fully synchronously (deliver everything, then compute everyone,
//! forever), never reach a legitimate configuration — the boundary node 2
//! oscillates between courting the `{0,1}` and `{3,4}` groups and is
//! admitted by neither, so maximality (ΠM) is violated in every state of
//! the cycle. `tests/oscillation.rs` replays the file and verifies all of
//! that mechanically, including that a staggered (still fair) schedule
//! escapes the cycle.

use dyngraph::generators::path;
use grp_core::GrpConfig;
use modelcheck::{find_synchronous_lasso, fresh_net, replay, Checker, GrpChecker};

fn main() {
    let config = GrpConfig::new(2);
    let net = fresh_net(path(5), &config);
    let lasso = find_synchronous_lasso(&net, 64).expect("the synchronous schedule is periodic");
    let checker = GrpChecker::new(2);
    let entry = replay(&net, &lasso.trace, Default::default()).expect("replays");
    assert!(entry.state_hash() == lasso.entry_hash, "lasso closes");
    assert!(
        !checker.goal(&entry),
        "the pinned cycle must not be legitimate"
    );

    println!("# Synchronous-schedule oscillation on path(5), dmax = 2.");
    println!("# Replay from freshly-booted nodes; the final state is the cycle");
    println!(
        "# entry, reached again every {} rounds.",
        lasso.period_rounds
    );
    println!("# stem_rounds {}", lasso.stem_rounds);
    println!("# period_rounds {}", lasso.period_rounds);
    println!("# entry_hash {}", lasso.entry_hash.to_hex());
    for choice in &lasso.trace {
        println!("{choice}");
    }
}

//! VANET convoy: vehicles with different speeds on a two-lane highway.
//!
//! Demonstrates the best-effort continuity property in the scenario that
//! motivated the paper: groups survive as long as their members stay within
//! `Dmax` hops, and only break when the convoy physically stretches apart.
//! The per-transition ΠT/ΠC accounting is implemented as a custom
//! [`Observer`] streaming over the run, with the built-in
//! [`ContinuityProbe`] cross-checking the aggregate.
//!
//! ```text
//! cargo run --example vanet_convoy
//! ```

use dyngraph::NodeId;
use grp_core::observers::ContinuityProbe;
use grp_core::predicates::{pi_c_violations, pi_t_violations, SystemSnapshot};
use grp_core::{GrpConfig, GrpNode};
use netsim::mobility::Highway;
use netsim::radio::UnitDisk;
use netsim::{Observer, SimBuilder, SimConfig, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Streams per-transition ΠT/ΠC violation counts, keeping only the
/// previous round's (Arc-shared) snapshot.
struct ConvoyWatch {
    dmax: usize,
    previous: Option<SystemSnapshot>,
    best_effort_violations: u64,
}

impl Observer<GrpNode> for ConvoyWatch {
    fn on_round_end(&mut self, round: u64, sim: &Simulator<GrpNode>) {
        let snapshot = SystemSnapshot::from_simulator(sim);
        if let Some(prev) = &self.previous {
            let t_viol = pi_t_violations(prev, &snapshot, self.dmax);
            let c_viol = pi_c_violations(prev, &snapshot);
            if t_viol == 0 && c_viol > 0 {
                self.best_effort_violations += 1;
            }
            if (round + 1).is_multiple_of(10) {
                let note = if t_viol > 0 {
                    "topology stretched beyond Dmax — groups may split"
                } else {
                    ""
                };
                println!(
                    "{:5} | {:6} | {:7} | {:7} | {note}",
                    round + 1,
                    snapshot.group_count(),
                    t_viol == 0,
                    c_viol == 0
                );
            }
        }
        self.previous = Some(snapshot);
    }
}

fn main() {
    let dmax = 3;
    let vehicles = 14;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    // speeds between 2 and 8 m per tick-equivalent: the convoy stretches
    let mobility = Highway::new(vehicles, 2, 1_200.0, 15.0, (0.002, 0.008), &mut rng);
    let radio = UnitDisk::new(40.0);

    let mut sim = SimBuilder::new()
        .config(SimConfig::rounds(7))
        .spatial(Box::new(radio), Box::new(mobility))
        .nodes_by_id(vehicles as u64, |i| {
            GrpNode::new(NodeId(i.raw()), GrpConfig::new(dmax))
        })
        .build();

    println!("{vehicles} vehicles, two lanes, Dmax = {dmax}");
    println!("round | groups | ΠT held | ΠC held | note");

    let mut watch = ConvoyWatch {
        dmax,
        previous: None,
        best_effort_violations: 0,
    };
    let mut probe = ContinuityProbe::new(dmax);
    sim.run_rounds_observed(80, &mut (&mut watch, &mut probe));

    println!(
        "\ntransitions where continuity was lost although the topology allowed it: {}",
        watch.best_effort_violations
    );
    let stats = probe.stats();
    println!(
        "built-in ContinuityProbe agrees: ΠC held in {}/{} ΠT-transitions ({:.1}% conformance)",
        stats.pi_c_held_given_pi_t,
        stats.pi_t_held,
        100.0 * stats.view_continuity()
    );
    println!("(the paper's Proposition 14 predicts 0 once the system has converged)");
}

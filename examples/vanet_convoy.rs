//! VANET convoy: vehicles with different speeds on a two-lane highway.
//!
//! Demonstrates the best-effort continuity property in the scenario that
//! motivated the paper: groups survive as long as their members stay within
//! `Dmax` hops, and only break when the convoy physically stretches apart.
//!
//! ```text
//! cargo run --example vanet_convoy
//! ```

use dyngraph::NodeId;
use grp_core::predicates::{pi_c_violations, pi_t_violations, SystemSnapshot};
use grp_core::{GrpConfig, GrpNode};
use netsim::mobility::Highway;
use netsim::radio::UnitDisk;
use netsim::{SimConfig, Simulator, TopologyMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dmax = 3;
    let vehicles = 14;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    // speeds between 2 and 8 m per tick-equivalent: the convoy stretches
    let mobility = Highway::new(vehicles, 2, 1_200.0, 15.0, (0.002, 0.008), &mut rng);
    let radio = UnitDisk::new(40.0);

    let mut sim = Simulator::new(
        SimConfig::rounds(7),
        TopologyMode::Spatial {
            radio: Box::new(radio),
            mobility: Box::new(mobility),
        },
    );
    sim.add_nodes((0..vehicles as u64).map(|i| GrpNode::new(NodeId(i), GrpConfig::new(dmax))));

    println!("{vehicles} vehicles, two lanes, Dmax = {dmax}");
    println!("round | groups | ΠT held | ΠC held | note");

    let mut previous: Option<SystemSnapshot> = None;
    let mut best_effort_violations = 0;
    for round in 1..=80u64 {
        sim.run_rounds(1);
        let snapshot = SystemSnapshot::from_simulator(&sim);
        if let Some(prev) = &previous {
            let t_viol = pi_t_violations(prev, &snapshot, dmax);
            let c_viol = pi_c_violations(prev, &snapshot);
            if t_viol == 0 && c_viol > 0 {
                best_effort_violations += 1;
            }
            if round % 10 == 0 {
                let note = if t_viol > 0 {
                    "topology stretched beyond Dmax — groups may split"
                } else {
                    ""
                };
                println!(
                    "{round:5} | {:6} | {:7} | {:7} | {note}",
                    snapshot.group_count(),
                    t_viol == 0,
                    c_viol == 0
                );
            }
        }
        previous = Some(snapshot);
    }
    println!(
        "\ntransitions where continuity was lost although the topology allowed it: {best_effort_violations}"
    );
    println!("(the paper's Proposition 14 predicts 0 once the system has converged)");
}

//! GRP outside the simulator: one OS thread per node, lossy crossbeam
//! channels, wall-clock timers — then a live topology change.
//!
//! ```text
//! cargo run --example threaded_runtime
//! ```

use dyngraph::generators::path;
use dyngraph::NodeId;
use grp_core::GrpConfig;
use grp_runtime::{Cluster, ClusterConfig, LinkQuality};
use std::time::Duration;

fn main() {
    let config = ClusterConfig {
        send_period: Duration::from_millis(10),
        compute_period: Duration::from_millis(40),
        link: LinkQuality::lossy(0.2),
        grp: GrpConfig::new(3),
        seed: 7,
    };
    println!("starting 5 node threads on a line, 20% message loss …");
    let cluster = Cluster::start(path(5), config);

    cluster.wait_for_rounds(50, Duration::from_secs(20));
    let snapshot = cluster.snapshot();
    println!(
        "after ~50 rounds: {} group(s), agreement = {}",
        snapshot.group_count(),
        snapshot.agreement()
    );
    for (id, view) in cluster.views() {
        println!(
            "  node {id}: {:?}",
            view.iter().map(|n| n.raw()).collect::<Vec<_>>()
        );
    }

    println!("\ncutting the link between node 1 and node 2 …");
    let mut broken = path(5);
    broken.remove_edge(NodeId(1), NodeId(2));
    cluster.set_topology(broken);
    let target = cluster.rounds().values().copied().max().unwrap_or(0) + 50;
    cluster.wait_for_rounds(target, Duration::from_secs(20));
    let snapshot = cluster.snapshot();
    println!(
        "after the cut: {} group(s), safety(3) = {}",
        snapshot.group_count(),
        snapshot.safety(3)
    );
    for (id, view) in cluster.views() {
        println!(
            "  node {id}: {:?}",
            view.iter().map(|n| n.raw()).collect::<Vec<_>>()
        );
    }
    cluster.shutdown();
}

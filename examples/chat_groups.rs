//! A proximity chat built on the group service.
//!
//! The application layer only reads `view_v`: every node "posts" a message
//! to its group each round, and a message is considered delivered when every
//! member of the poster's view also has the poster in its own view. This
//! shows how a third-party application can rely on the views *before* global
//! convergence, thanks to the continuity guarantee — and how application
//! logic rides the observer pipeline instead of hand-rolling a capture loop.
//!
//! ```text
//! cargo run --example chat_groups
//! ```

use dyngraph::generators::clustered;
use dyngraph::NodeId;
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::{Observer, SimBuilder, SimConfig, Simulator};

/// The chat application as an observer: it reads each round's views and
/// counts group-wide message deliveries, streaming, with no snapshot vector.
#[derive(Default)]
struct ChatApp {
    posted: u64,
    delivered: u64,
}

impl Observer<GrpNode> for ChatApp {
    fn on_round_end(&mut self, round: u64, sim: &Simulator<GrpNode>) {
        let snapshot = SystemSnapshot::from_simulator(sim);
        for (author, view) in &snapshot.views {
            if view.len() <= 1 {
                continue;
            }
            self.posted += 1;
            let all_members_see_author = view.iter().all(|member| {
                snapshot
                    .views
                    .get(member)
                    .map(|their_view| their_view.contains(author))
                    .unwrap_or(false)
            });
            if all_members_see_author {
                self.delivered += 1;
            }
        }
        if (round + 1).is_multiple_of(10) {
            println!(
                "round {:3}: {} chat groups, {:.1} members on average",
                round + 1,
                snapshot.group_count(),
                snapshot.mean_group_size(),
            );
        }
    }
}

fn main() {
    let dmax = 2;
    // three dense pockets of 4 nodes chained by bridges — typical "groups of
    // vehicles at a junction"
    let mut sim = SimBuilder::new()
        .config(SimConfig::rounds(5))
        .explicit(clustered(3, 4))
        .nodes_from_topology(|id| GrpNode::new(id, GrpConfig::new(dmax)))
        .build();

    let mut app = ChatApp::default();
    sim.run_rounds_observed(50, &mut app);

    println!("\nchat messages posted to a group : {}", app.posted);
    println!("delivered to every group member  : {}", app.delivered);
    println!(
        "delivery ratio                   : {:.1}%",
        100.0 * app.delivered as f64 / app.posted.max(1) as f64
    );

    let ids: Vec<NodeId> = sim.node_ids();
    println!(
        "\nfinal group of node {}: {:?}",
        ids[0],
        sim.protocol(ids[0]).unwrap().view()
    );
}

//! A proximity chat built on the group service.
//!
//! The application layer only reads `view_v`: every node "posts" a message
//! to its group each round, and a message is considered delivered when every
//! member of the poster's view also has the poster in its own view. This
//! shows how a third-party application can rely on the views *before* global
//! convergence, thanks to the continuity guarantee.
//!
//! ```text
//! cargo run --example chat_groups
//! ```

use dyngraph::generators::clustered;
use dyngraph::NodeId;
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::{SimConfig, Simulator, TopologyMode};

fn main() {
    let dmax = 2;
    // three dense pockets of 4 nodes chained by bridges — typical "groups of
    // vehicles at a junction"
    let topology = clustered(3, 4);
    let mut sim = Simulator::new(
        SimConfig::rounds(5),
        TopologyMode::Explicit(topology.clone()),
    );
    sim.add_nodes(
        topology
            .nodes()
            .map(|id| GrpNode::new(id, GrpConfig::new(dmax)))
            .collect::<Vec<_>>(),
    );

    let mut delivered = 0u64;
    let mut posted = 0u64;
    for round in 1..=50u64 {
        sim.run_rounds(1);
        let snapshot = SystemSnapshot::from_simulator(&sim);
        // every node posts one chat message to its current group
        for (author, view) in &snapshot.views {
            if view.len() <= 1 {
                continue;
            }
            posted += 1;
            let all_members_see_author = view.iter().all(|member| {
                snapshot
                    .views
                    .get(member)
                    .map(|their_view| their_view.contains(author))
                    .unwrap_or(false)
            });
            if all_members_see_author {
                delivered += 1;
            }
        }
        if round % 10 == 0 {
            println!(
                "round {round:3}: {} chat groups, {:.1} members on average",
                snapshot.group_count(),
                snapshot.mean_group_size(),
            );
        }
    }
    println!("\nchat messages posted to a group : {posted}");
    println!("delivered to every group member  : {delivered}");
    println!(
        "delivery ratio                   : {:.1}%",
        100.0 * delivered as f64 / posted.max(1) as f64
    );

    let ids: Vec<NodeId> = sim.node_ids();
    println!(
        "\nfinal group of node {}: {:?}",
        ids[0],
        sim.protocol(ids[0]).unwrap().view()
    );
}

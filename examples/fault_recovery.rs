//! Self-stabilization in action: corrupt half of the nodes and watch the
//! system repair itself.
//!
//! ```text
//! cargo run --example fault_recovery
//! ```

use dyngraph::generators::grid;
use grp_core::observers::ConvergenceProbe;
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::{FaultKind, ScheduledFault, SimBuilder, SimConfig};

fn main() {
    let dmax = 3;
    let mut sim = SimBuilder::new()
        .config(SimConfig::rounds(13))
        .explicit(grid(3, 4))
        .nodes_from_topology(|id| GrpNode::new(id, GrpConfig::new(dmax)))
        .build();

    // let the 3x4 grid converge
    sim.run_rounds(60);
    let before = SystemSnapshot::from_simulator(&sim);
    println!(
        "after convergence: {} groups, legitimate = {}",
        before.group_count(),
        before.legitimate(dmax)
    );

    // corrupt half of the nodes' memories (ghost members, scrambled
    // priorities) — the transient faults of the self-stabilization model
    let victims: Vec<_> = sim.node_ids().into_iter().step_by(2).collect();
    println!("corrupting {} nodes …", victims.len());
    let now = sim.now();
    sim.schedule_faults(
        victims
            .iter()
            .map(|&v| ScheduledFault::new(now + 1, FaultKind::CorruptState(v))),
    );
    sim.run_rounds(1);
    let corrupted = SystemSnapshot::from_simulator(&sim);
    println!(
        "right after the fault: legitimate = {} (agreement = {})",
        corrupted.legitimate(dmax),
        corrupted.agreement()
    );

    // stream legitimacy verdicts until the system is legitimate again —
    // no snapshot history retained at all
    let mut probe = ConvergenceProbe::new(dmax);
    for round in 1..=120u64 {
        sim.run_rounds_observed(1, &mut probe);
        if probe.is_currently_legitimate() {
            println!("system legitimate again after {round} rounds");
            let snapshot = SystemSnapshot::from_simulator(&sim);
            println!(
                "final groups: {:?}",
                snapshot
                    .groups()
                    .iter()
                    .map(|g| g.iter().map(|n| n.raw()).collect::<Vec<_>>())
                    .collect::<Vec<_>>()
            );
            return;
        }
    }
    println!("system did not recover within the budget (unexpected)");
}

//! Quickstart: run GRP on a small fixed topology and watch the groups form.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dyngraph::generators::path;
use dyngraph::NodeId;
use grp_core::predicates::SystemSnapshot;
use grp_core::{GrpConfig, GrpNode};
use netsim::{SimConfig, Simulator, TopologyMode};

fn main() {
    // Six nodes on a line; the application tolerates groups of diameter 2.
    let dmax = 2;
    let topology = path(6);
    let mut sim = Simulator::new(
        SimConfig::rounds(42),
        TopologyMode::Explicit(topology.clone()),
    );
    sim.add_nodes((0..6).map(|i| GrpNode::new(NodeId(i), GrpConfig::new(dmax))));

    println!("topology: a line of 6 nodes, Dmax = {dmax}");
    println!("round | groups (each node's view)");
    for round in 1..=40u64 {
        sim.run_rounds(1);
        if round % 5 == 0 {
            let snapshot = SystemSnapshot::from_simulator(&sim);
            let groups: Vec<Vec<u64>> = snapshot
                .groups()
                .iter()
                .map(|g| g.iter().map(|n| n.raw()).collect())
                .collect();
            println!(
                "{round:5} | {groups:?}  (ΠA={} ΠS={} ΠM={})",
                snapshot.agreement(),
                snapshot.safety(dmax),
                snapshot.maximality(dmax)
            );
        }
    }

    let snapshot = SystemSnapshot::from_simulator(&sim);
    println!("\nfinal views:");
    for (id, node) in sim.protocols() {
        let members: Vec<u64> = node.view().iter().map(|n| n.raw()).collect();
        println!("  node {id}: {members:?}");
    }
    println!(
        "\nlegitimate configuration reached: {}",
        snapshot.legitimate(dmax)
    );
}

//! Quickstart: run GRP on a small fixed topology and watch the groups form.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dyngraph::generators::path;
use grp_core::{GrpConfig, GrpNode, SnapshotRecorder};
use netsim::{SimBuilder, SimConfig};

fn main() {
    // Six nodes on a line; the application tolerates groups of diameter 2.
    let dmax = 2;
    let mut sim = SimBuilder::new()
        .config(SimConfig::rounds(42))
        .explicit(path(6))
        .nodes_from_topology(|id| GrpNode::new(id, GrpConfig::new(dmax)))
        .build();

    println!("topology: a line of 6 nodes, Dmax = {dmax}");
    println!("round | groups (each node's view)");
    // one copy-on-write recorder observes the whole run; we print its
    // latest snapshot every 5 rounds
    let mut recorder = SnapshotRecorder::new();
    for round in (5..=40u64).step_by(5) {
        sim.run_rounds_observed(5, &mut recorder);
        let snapshot = recorder.last_snapshot().expect("rounds recorded");
        let groups: Vec<Vec<u64>> = snapshot
            .groups()
            .iter()
            .map(|g| g.iter().map(|n| n.raw()).collect())
            .collect();
        println!(
            "{round:5} | {groups:?}  (ΠA={} ΠS={} ΠM={})",
            snapshot.agreement(),
            snapshot.safety(dmax),
            snapshot.maximality(dmax)
        );
    }

    let snapshot = recorder.last_snapshot().expect("rounds recorded");
    println!("\nfinal views:");
    for (id, node) in sim.protocols() {
        let members: Vec<u64> = node.view().iter().map(|n| n.raw()).collect();
        println!("  node {id}: {members:?}");
    }
    println!(
        "\nlegitimate configuration reached: {}",
        snapshot.legitimate(dmax)
    );
}

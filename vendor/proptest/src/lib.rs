//! Offline mini property-testing engine with a `proptest`-shaped API.
//!
//! The build environment cannot fetch crates.io, so this shim implements the
//! subset of proptest the workspace's property tests use: range and tuple
//! strategies, `prop_map`, `collection::vec` / `collection::btree_set`, the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header, and
//! the `prop_assert!` / `prop_assert_eq!` result-returning assertions.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs (every strategy value
//!   is `Debug`) but is not minimised;
//! * the case RNG is seeded from the test function name, so runs are fully
//!   deterministic and reproducible (which the golden-trace CI wants) at the
//!   cost of not exploring new inputs across runs.

use std::fmt;
use std::ops::Range;

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name, stable across runs and platforms.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Execution parameters for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type. Values must be `Debug` so failing
/// cases can report their inputs (real proptest requires the same).
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy wrapping a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy: the building block of [`prop_oneof!`], which
/// needs to hold arms of different strategy types producing one value
/// type. ([`Strategy`] itself is not object-safe because of the generic
/// `prop_map`, so the erasure wraps the sampling function instead.)
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

/// Erase a strategy's type, keeping only its sampling behaviour.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(move |rng| strategy.sample(rng)))
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased arms (`prop_oneof!`). Real proptest
/// supports per-arm weights; the shim keeps every arm equally likely.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// `Vec` of values from an element strategy, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of values from an element strategy. The set may come out
    /// smaller than the drawn size when duplicates collide.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // extra draws compensate for duplicate collisions, bounded so
            // tight element domains cannot loop forever
            for _ in 0..(2 * n + 4) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} == {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u64..10, pair in (0u8..3, 1usize..4)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 3 && (1..4).contains(&pair.1));
        }

        #[test]
        fn collections_respect_bounds(v in crate::collection::vec(0u64..5, 0..7)) {
            prop_assert!(v.len() < 7);
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn mapped_strategies(n in (1usize..6).prop_map(|k| k * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }

        #[test]
        fn oneof_samples_every_arm(choice in prop_oneof![
            (0u64..10).prop_map(|n| ("small", n)),
            (100u64..110).prop_map(|n| ("large", n)),
            Just(("fixed", 42u64)),
        ]) {
            match choice {
                ("small", n) => prop_assert!(n < 10),
                ("large", n) => prop_assert!((100..110).contains(&n)),
                ("fixed", n) => prop_assert_eq!(n, 42),
                other => return Err(TestCaseError::fail(format!("unknown arm {other:?}"))),
            }
        }
    }

    #[test]
    fn runs_generated_tests() {
        ranges_and_tuples();
        collections_respect_bounds();
        mapped_strategies();
        oneof_samples_every_arm();
    }

    proptest! {
        #[test]
        fn default_config_block_compiles(b in 0u8..2) {
            if b > 1 {
                return Ok(());
            }
            prop_assert!(b < 2);
        }
    }

    #[test]
    fn default_config_runs() {
        default_config_block_compiles();
    }
}

//! Offline shim of `parking_lot` backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `Mutex::lock` /
//! `RwLock::read` / `RwLock::write` returning guards directly (no
//! `Result`) — on top of the standard library primitives. Poisoned locks
//! propagate the inner value like parking_lot would (which never poisons).

use std::sync::{self, LockResult};

/// Unwrap a std lock result, ignoring poison like parking_lot does.
fn ignore_poison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual exclusion primitive (parking_lot-shaped).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader-writer lock (parking_lot-shaped).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

//! Offline shim of `crossbeam-channel` backed by `std::sync::mpsc`.
//!
//! Provides `unbounded()` channels with cloneable senders *and* receivers
//! (the std receiver is wrapped in a mutex to get crossbeam's cloneable
//! receiver semantics: concurrent receivers steal from one queue), plus the
//! `recv_timeout` API the threaded runtime uses.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use std::sync::mpsc::RecvTimeoutError;
pub use std::sync::mpsc::SendError;
pub use std::sync::mpsc::TryRecvError;

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// The receiving half of an unbounded channel (cloneable; clones share the
/// same queue, as in crossbeam).
pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .recv_timeout(timeout)
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        tx.clone().send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.clone().recv().unwrap(), 42);
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}

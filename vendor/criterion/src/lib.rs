//! Offline shim of `criterion`: a minimal wall-clock micro-benchmark
//! harness exposing the API surface the `bench` crate uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `criterion_group!`,
//! `criterion_main!`).
//!
//! There is no statistical analysis: each benchmark runs a fixed number of
//! iterations and prints the mean time per iteration. That is enough to
//! keep the bench targets compiling and give rough numbers offline; swap in
//! real criterion when a registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&id.to_string(), self.sample_size, |bencher| {
            f(bencher, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iterations: u64, mut f: F) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if iterations > 0 {
        bencher.elapsed / iterations as u32
    } else {
        Duration::ZERO
    };
    println!("  {name}: {per_iter:?}/iter over {iterations} iterations");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |n| n * n, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}

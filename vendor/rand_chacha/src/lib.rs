//! Offline implementation of the ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds, exposed through the vendored `rand` shim's `RngCore` /
//! `SeedableRng` traits. The generator is fully deterministic given a seed
//! and behaves identically on every platform — the property the simulator's
//! golden-trace digests rely on.
//!
//! The word stream is a faithful ChaCha8 keystream (verifiable against the
//! reference implementation), but note that the upstream `rand_chacha`
//! crate layers extra buffering logic on top; streams are therefore not
//! guaranteed bit-identical to crates.io `rand_chacha`, only self-consistent.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (zero).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // one double round = column round + diagonal round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The current absolute word position in the keystream (diagnostics).
    pub fn word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha8_keystream_matches_reference_vector() {
        // All-zero key, all-zero nonce, counter 0: first block of the
        // ChaCha8 keystream (RFC-style little-endian serialization), as
        // produced by the Bernstein reference implementation.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 32];
        rng.fill_bytes(&mut out);
        let expected: [u8; 32] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1, 0x2c, 0x84, 0x0e, 0xc3, 0xce, 0x9a, 0x7f, 0x3b, 0x18, 0x1b, 0xe1, 0x88,
            0xef, 0x71, 0x1a, 0x1e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_sampling_through_the_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v: u64 = rng.gen_range(0..10);
            assert!(v < 10);
            seen.insert(v);
        }
        assert!(seen.len() >= 8, "draws cover the range: {seen:?}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
        assert_eq!(rng.word_pos(), fork.word_pos());
    }
}

//! Inert `Serialize` / `Deserialize` derives for the offline serde stub.
//!
//! Both macros accept (and discard) `#[serde(...)]` helper attributes and
//! expand to nothing, so annotated types compile without a serialization
//! framework being present.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform range sampling over the
//! primitive integer and float types, and Bernoulli draws. All algorithms
//! are deterministic and platform-independent (no OS entropy, no
//! `usize`-width dependence in the sampling arithmetic), which is exactly
//! what the golden-trace tests require.
//!
//! This is **not** the upstream implementation and makes no attempt to
//! produce bit-identical streams to crates.io `rand`; only the API shape is
//! preserved so the protocol code stays source-compatible.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution-style range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` without
/// modulo bias worth caring about for simulation workloads, and fully
/// deterministic across platforms.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
            fn is_empty_range(&self) -> bool {
                self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..10`, `0.0..=1.0`, …).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // consume one draw even for the degenerate cases so the stream
        // position does not depend on `p`
        let x = unit_f64(self);
        x < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types a plain `rng.gen()` can produce.
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (stable across
    /// platforms; this is the only seeding path the workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// `rand::rngs` namespace stub kept for source compatibility.
pub mod rngs {}

/// The usual glob-import surface (`use rand::prelude::*`).
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so the high bits (used by bounded sampling) vary
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(0x1234_5678_9ABC_DEF0);
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(42);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Offline shim of `rayon`: the parallel-iterator API surface the
//! experiments use, executed sequentially, plus a genuinely parallel
//! work-stealing [`par_map`] / [`join`] used by the scenario suite.
//!
//! `par_iter()` / `into_par_iter()` return a [`ParIter`] wrapper whose
//! inherent methods mirror rayon's `ParallelIterator` combinators (`map`,
//! `filter`, `filter_map`, `reduce(identity, op)`, `collect`, …) but drive a
//! plain sequential iterator underneath (the combinators accept `FnMut`
//! closures, which cannot be shared across threads). Sequential execution
//! is also exactly what the deterministic conformance harness wants:
//! replication order never depends on thread scheduling.
//!
//! [`par_map`] is the genuinely multi-threaded entry point the scenario
//! suite runs on: an order-preserving parallel map over an owned `Vec`
//! (what upstream rayon spells `vec.into_par_iter().map(f).collect()`),
//! implemented with scoped threads and an atomic work-stealing cursor.
//! Output index `i` always holds `f(items[i])`, so results are
//! deterministic regardless of how the items were interleaved across
//! workers. [`join`] mirrors the upstream two-closure API for future
//! compatibility; nothing in the workspace consumes it yet.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run two closures, potentially in parallel, and return both results —
/// mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Order-preserving parallel map over an owned vector on up to `threads`
/// workers. `par_map(items, 1, f)` degenerates to a plain sequential map;
/// any thread count produces the same output vector.
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items move into Option slots so workers can claim them by index; each
    // worker grabs the next unclaimed index (work stealing via an atomic
    // cursor) and writes its result back under the same index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("par_map slot poisoned")
                    .take()
                    .expect("par_map index claimed twice");
                let out = f(item);
                *results[i].lock().expect("par_map result poisoned") = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map result poisoned")
                .expect("par_map result missing")
        })
        .collect()
}

/// Sequential stand-in for rayon's parallel iterators.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// rayon-style reduce: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

pub mod prelude {
    use super::ParIter;

    /// `par_iter()` for slice-like containers — sequential underneath.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;

        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.iter())
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.iter())
        }
    }

    /// `into_par_iter()` for owned containers and ranges.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;

        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = std::ops::Range<u64>;
        type Item = u64;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_sequential_semantics() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let evens = v.par_iter().filter(|x| **x % 2 == 0).count();
        assert_eq!(evens, 2);

        let total = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);

        let s: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = crate::par_map(items.clone(), threads, |x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert_eq!(crate::par_map(Vec::<u64>::new(), 4, |x| x), Vec::<u64>::new());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}

//! Offline shim of `rayon`: the parallel-iterator API surface the
//! experiments use, executed sequentially.
//!
//! `par_iter()` / `into_par_iter()` return a [`ParIter`] wrapper whose
//! inherent methods mirror rayon's `ParallelIterator` combinators (`map`,
//! `filter`, `filter_map`, `reduce(identity, op)`, `collect`, …) but drive a
//! plain sequential iterator underneath. Sequential execution is also
//! exactly what the deterministic conformance harness wants: replication
//! order never depends on thread scheduling.

/// Sequential stand-in for rayon's parallel iterators.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// rayon-style reduce: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

pub mod prelude {
    use super::ParIter;

    /// `par_iter()` for slice-like containers — sequential underneath.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;

        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.iter())
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.iter())
        }
    }

    /// `into_par_iter()` for owned containers and ranges.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;

        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = std::ops::Range<u64>;
        type Item = u64;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_sequential_semantics() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let evens = v.par_iter().filter(|x| **x % 2 == 0).count();
        assert_eq!(evens, 2);

        let total = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);

        let s: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(s, 10);
    }
}

//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! code is ready for real serde when a registry is available, but nothing in
//! the build environment can fetch crates. This stub keeps those derives
//! compiling: the traits are inert markers and the derive macros (from the
//! sibling `serde_derive` stub) expand to nothing, swallowing `#[serde(...)]`
//! helper attributes.
//!
//! Machine-readable artifacts in this repository (scenario `result.json`,
//! trace digests) are produced by hand-rolled encoders in the `scenarios`
//! crate instead, so no generic serialization framework is required.

pub use serde_derive::{Deserialize, Serialize};

/// Inert marker standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Inert marker standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}

//! Workspace umbrella crate for the GRP reproduction.
//!
//! The actual functionality lives in the member crates; this package exists
//! to own the cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/`. Re-exports are provided so the examples and
//! docs can use one import root when convenient.

#![forbid(unsafe_code)]

pub use baselines;
pub use dyngraph;
pub use experiments;
pub use grp_core;
pub use grp_runtime;
pub use metrics;
pub use netsim;
pub use scenarios;

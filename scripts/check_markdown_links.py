#!/usr/bin/env python3
"""Intra-repo markdown link checker.

Walks every first-party .md file (vendor/ and target/ excluded), extracts
inline links and reference definitions, and fails if a relative link
points at a file that does not exist in the repository. External links
(http/https/mailto) are deliberately NOT fetched: this repo builds
offline, and CI must not depend on third-party uptime. Anchors are
stripped — the check is file-existence, not heading-existence.

Usage: python3 scripts/check_markdown_links.py [repo_root]
Exit code 0 iff every relative link resolves.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "target", "vendor", "results", "bench-results", "node_modules"}
# [text](target) — stops at the first unescaped ')'; tolerates titles
INLINE = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# [ref]: target
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code(text):
    # drop fenced code blocks and inline code spans: links inside them are
    # examples, not navigation
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check(root):
    failures = []
    for path in sorted(md_files(root)):
        with open(path, encoding="utf-8") as f:
            text = strip_code(f.read())
        targets = INLINE.findall(text) + REFDEF.findall(text)
        for target in targets:
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                failures.append(f"{rel}: broken link `{target}` -> {resolved}")
    return failures


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = check(root)
    for line in failures:
        print(f"BROKEN  {line}")
    checked = len(list(md_files(root)))
    if failures:
        print(f"{len(failures)} broken link(s) across {checked} markdown files")
        return 1
    print(f"all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
